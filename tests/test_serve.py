"""End-to-end tests for the sweep-as-a-service daemon.

Each test boots a real :class:`repro.serve.ServeDaemon` on an
ephemeral loopback port (in a background thread) and talks to it with
the stdlib :class:`repro.serve.ServeClient` -- the same path the CLI
and the CI smoke job use.  The contracts pinned here:

* a daemon sweep is **bit-identical** to the synchronous
  :func:`repro.core.hybrid.hybrid_sweep` (JSON floats round-trip
  exactly, so equality is exact);
* two identical concurrent submissions coalesce onto one execution --
  one simulation, two subscribers, both get the result;
* cancelling one subscriber of a shared execution leaves it running;
  cancelling the *last* subscriber cancels the execution itself;
* the NDJSON event stream is replayable, ordered and terminated;
* the store endpoints drive ``info``/``cleanup_stale_tmp``/``purge``;
* shutdown drains in-flight executions and the daemon thread exits.

Controllable executions use a gated runner substituted into the
scheduler's per-instance ``_runners`` table -- no sleeps, no races.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.config import Protocol
from repro.core.hybrid import hybrid_sweep
from repro.core.parallel import SweepCancelled
from repro.serve import ServeClient, ServeDaemon, ServeError
from repro.serve.protocol import operating_point_row

REFS = 300
SWEEP_SPEC = {
    "kind": "sweep",
    "benchmark": "mp3d",
    "processors": 4,
    "data_refs": REFS,
}


@pytest.fixture
def daemon(temp_store):
    served = ServeDaemon(port=0, jobs=1).start_in_thread()
    yield served
    served.stop()
    served.join(timeout=30)


@pytest.fixture
def client(daemon):
    return ServeClient(daemon.url, timeout=120.0)


def _gated_runner(payload=None, run_real=None):
    """A runner that blocks until released, honouring cancellation.

    Returns ``(runner, entered, gate)``: ``entered`` is set once the
    runner is live; setting ``gate`` lets it finish (either with the
    canned ``payload`` or by delegating to the real runner).
    """
    entered = threading.Event()
    gate = threading.Event()

    def runner(scheduler, execution):
        entered.set()
        while not gate.wait(timeout=0.02):
            if execution.cancel_requested.is_set():
                raise SweepCancelled("cancelled while gated")
        if execution.cancel_requested.is_set():
            raise SweepCancelled("cancelled while gated")
        if run_real is not None:
            return run_real(scheduler, execution)
        return payload

    return runner, entered, gate


# ----------------------------------------------------------------------
# E2E: daemon result == synchronous result, bit for bit
# ----------------------------------------------------------------------
def test_daemon_sweep_is_bit_identical_to_sync(client):
    job = client.submit(SWEEP_SPEC)
    assert job["state"] in ("pending", "running")
    assert job["coalesced"] is False
    final = client.wait(job["job"])
    assert final["state"] == "done"
    assert final["simulated"] == 1 and final["cache_hits"] == 0

    payload = client.result(job["job"])
    expected = hybrid_sweep("mp3d", 4, Protocol.SNOOPING, data_refs=REFS)
    assert payload["kind"] == "sweep"
    assert payload["label"] == expected.label
    assert payload["protocol"] == expected.protocol.value
    # Full-precision float fields survive the JSON round-trip exactly,
    # so this is bit-for-bit equality with the sync methodology.
    assert payload["points"] == [
        operating_point_row(point) for point in expected.points
    ]


def test_resubmission_after_completion_hits_the_store(client):
    first = client.wait(client.submit(SWEEP_SPEC)["job"])
    assert first["simulated"] == 1
    second = client.wait(client.submit(SWEEP_SPEC)["job"])
    assert second["state"] == "done"
    assert second["simulated"] == 0 and second["cache_hits"] == 1
    stats = client.stats()
    assert stats["executions_started"] == 2  # store-backed, not coalesced
    assert stats["coalesced"] == 0


# ----------------------------------------------------------------------
# Request coalescing
# ----------------------------------------------------------------------
def test_identical_concurrent_submissions_share_one_execution(
    daemon, client
):
    real = daemon.scheduler._runners["sweep"]
    runner, entered, gate = _gated_runner(run_real=real)
    daemon.scheduler._runners["sweep"] = runner

    first = client.submit(SWEEP_SPEC)
    assert entered.wait(timeout=30)
    second = client.submit(SWEEP_SPEC)
    assert second["coalesced"] is True
    assert second["execution"] == first["execution"]
    assert second["job"] != first["job"]

    stats = client.stats()
    assert stats["submitted"] == 2
    assert stats["coalesced"] == 1
    assert stats["executions_started"] == 1

    gate.set()
    final_first = client.wait(first["job"])
    final_second = client.wait(second["job"])
    assert final_first["state"] == final_second["state"] == "done"
    # One simulation served both submissions: zero additional work.
    assert final_first["simulated"] == final_second["simulated"] == 1
    assert client.result(first["job"]) == client.result(second["job"])
    assert client.stats()["executions_started"] == 1


def test_different_specs_do_not_coalesce(daemon, client):
    runner, entered, gate = _gated_runner(payload={"kind": "sweep"})
    daemon.scheduler._runners["sweep"] = runner
    first = client.submit(SWEEP_SPEC)
    assert entered.wait(timeout=30)
    other = client.submit({**SWEEP_SPEC, "processors": 8})
    assert other["coalesced"] is False
    assert other["execution"] != first["execution"]
    assert client.stats()["executions_started"] == 2
    gate.set()
    client.wait(first["job"])
    client.wait(other["job"])


# ----------------------------------------------------------------------
# Cancellation semantics
# ----------------------------------------------------------------------
def test_cancelling_one_subscriber_keeps_the_shared_execution(
    daemon, client
):
    runner, entered, gate = _gated_runner(payload={"kind": "sweep"})
    daemon.scheduler._runners["sweep"] = runner

    first = client.submit(SWEEP_SPEC)
    assert entered.wait(timeout=30)
    second = client.submit(SWEEP_SPEC)
    assert second["coalesced"] is True

    cancelled = client.cancel(first["job"])
    assert cancelled["state"] == "cancelled"
    stats = client.stats()
    assert stats["cancelled_jobs"] == 1
    assert stats["cancelled_executions"] == 0  # still one subscriber

    gate.set()
    final_second = client.wait(second["job"])
    assert final_second["state"] == "done"
    assert client.result(second["job"]) == {"kind": "sweep"}
    # The detached handle stays cancelled and has no result.
    assert client.job(first["job"])["state"] == "cancelled"
    with pytest.raises(ServeError) as excinfo:
        client.result(first["job"])
    assert excinfo.value.status == 409


def test_cancelling_the_last_subscriber_cancels_the_execution(
    daemon, client
):
    runner, entered, _gate = _gated_runner(payload={"kind": "sweep"})
    daemon.scheduler._runners["sweep"] = runner

    job = client.submit(SWEEP_SPEC)
    assert entered.wait(timeout=30)
    client.cancel(job["job"])
    final = client.wait(job["job"])
    assert final["state"] == "cancelled"
    stats = client.stats()
    assert stats["cancelled_jobs"] == 1
    assert stats["cancelled_executions"] == 1
    events = list(client.events(job["job"]))
    assert events[-1]["event"] == "cancelled"


def test_cancel_is_idempotent_and_404s_on_unknown_jobs(daemon, client):
    runner, entered, gate = _gated_runner(payload={"kind": "sweep"})
    daemon.scheduler._runners["sweep"] = runner
    job = client.submit(SWEEP_SPEC)
    assert entered.wait(timeout=30)
    client.cancel(job["job"])
    again = client.cancel(job["job"])  # second cancel: no double count
    assert again["state"] == "cancelled"
    assert client.stats()["cancelled_jobs"] == 1
    with pytest.raises(ServeError) as excinfo:
        client.cancel("j999")
    assert excinfo.value.status == 404
    client.wait(job["job"])


# ----------------------------------------------------------------------
# Event stream
# ----------------------------------------------------------------------
def test_event_stream_is_ordered_replayable_and_terminated(client):
    job = client.submit(SWEEP_SPEC)
    events = list(client.events(job["job"]))
    assert [event["seq"] for event in events] == list(range(len(events)))
    assert events[0] == {"event": "state", "state": "running", "seq": 0}
    kinds = [event["event"] for event in events]
    assert kinds.count("done") == 1 and kinds[-1] == "done"
    points = [event for event in events if event["event"] == "point"]
    assert len(points) == 1
    assert points[0]["done"] == points[0]["total"] == 1
    assert points[0]["benchmark"] == "mp3d"
    assert points[0]["cache_hit"] is False
    telemetry = [e for e in events if e["event"] == "telemetry"]
    assert len(telemetry) == 1
    assert "miss_latency" in telemetry[0]["histograms"]
    done = events[-1]
    assert done["simulated"] == 1 and done["cache_hits"] == 0
    # A late subscriber replays the identical history.
    assert list(client.events(job["job"])) == events


# ----------------------------------------------------------------------
# Validation and error paths
# ----------------------------------------------------------------------
def test_submission_validation_and_conflicts(daemon, client):
    with pytest.raises(ServeError) as excinfo:
        client.submit({"kind": "nope"})
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.submit({"kind": "sweep"})  # benchmark missing
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.job("j42")
    assert excinfo.value.status == 404

    runner, entered, gate = _gated_runner(payload={"kind": "sweep"})
    daemon.scheduler._runners["sweep"] = runner
    job = client.submit(SWEEP_SPEC)
    assert entered.wait(timeout=30)
    with pytest.raises(ServeError) as excinfo:
        client.result(job["job"])  # still running
    assert excinfo.value.status == 409
    gate.set()
    client.wait(job["job"])


def test_failed_execution_reports_the_error(daemon, client):
    job = client.submit({**SWEEP_SPEC, "benchmark": "no-such-benchmark"})
    events = list(client.events(job["job"]))
    final = client.job(job["job"])
    assert final["state"] == "failed"
    assert "no-such-benchmark" in final["error"]
    # The runner thread that raised is long gone by the time a client
    # asks what happened; the full traceback must round-trip through
    # the failed NDJSON event and the job record, not just the
    # one-line summary.
    (failed,) = [e for e in events if e.get("event") == "failed"]
    assert failed["error"] == final["error"]
    assert "Traceback (most recent call last)" in failed["traceback"]
    assert "no-such-benchmark" in failed["traceback"]
    assert final["traceback"] == failed["traceback"]
    with pytest.raises(ServeError) as excinfo:
        client.result(job["job"])
    assert excinfo.value.status == 409
    assert client.stats()["failed"] == 1


def test_route_bug_returns_500_with_traceback(daemon):
    import http.client
    import json

    def boom():
        raise RuntimeError("stats exploded")

    daemon.scheduler.registry.stats = boom
    connection = http.client.HTTPConnection(
        daemon.host, daemon.port, timeout=30
    )
    try:
        connection.request("GET", "/stats")
        response = connection.getresponse()
        payload = json.loads(response.read())
    finally:
        connection.close()
    assert response.status == 500
    assert payload["error"] == "RuntimeError: stats exploded"
    assert "Traceback (most recent call last)" in payload["traceback"]
    assert "stats exploded" in payload["traceback"]


# ----------------------------------------------------------------------
# Store endpoints
# ----------------------------------------------------------------------
def test_store_endpoints_drive_the_live_store(temp_store, client):
    client.wait(client.submit(SWEEP_SPEC)["job"])
    info = client.store_info()
    assert info["directory"] == str(temp_store.directory)
    assert info["entries"] == 1
    assert info["counters"]["lost_writes"] == 0

    temp_store.results_dir.joinpath(".tmp-stranded.json").write_text("{}")
    assert client.store_info()["tmp_files"] == 1
    assert client.store_cleanup(min_age_s=0.0)["removed"] == 1
    assert client.store_info()["tmp_files"] == 0

    assert client.store_purge()["purged"] == 1
    assert client.store_info()["entries"] == 0


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
def test_shutdown_drains_inflight_executions(daemon, client):
    runner, entered, _gate = _gated_runner(payload={"kind": "sweep"})
    daemon.scheduler._runners["sweep"] = runner
    job = client.submit(SWEEP_SPEC)
    assert entered.wait(timeout=30)

    assert client.shutdown() == {"ok": True, "stopping": True}
    daemon.join(timeout=30)
    assert not daemon._thread.is_alive()
    # The in-flight execution was cancelled during the drain.
    execution = daemon.scheduler.registry.jobs[job["job"]].execution
    assert execution.state.value == "cancelled"
    with pytest.raises((ConnectionError, OSError)):
        client.health()
