"""The perf bench harness: suites, baselines and the regression gate."""

from __future__ import annotations

import json

import pytest

from repro.perf import bench


def test_models_suite_reports_deterministic_counters(tmp_path):
    first = bench.run_suite("models", quick=True)
    second = bench.run_suite("models", quick=True)
    names = [w.name for w in first.workloads]
    assert "sweep.snooping" in names and "matching.table4" in names
    # Work counters are exact and repeatable; wall time is not.
    assert [w.counters for w in first.workloads] == [
        w.counters for w in second.workloads
    ]
    for workload in first.workloads:
        if workload.name == "grid.solve":
            # The vectorized engine gates its own counter.
            assert workload.gate == ("grid_evals",)
            assert workload.counters["grid_evals"] > 0
            assert workload.counters["points_failed"] == 0
        else:
            assert workload.gate == ("model_evals",)
            assert workload.counters["model_evals"] > 0
        assert all(name in workload.counters for name in workload.gate)

    from repro.models.grid import grid_available

    assert ("grid.solve" in names) == grid_available()

    # Round trip through the baseline file format.
    path = bench.write_baseline(first, tmp_path)
    assert path.endswith("BENCH_models.json")
    baseline = bench.load_baseline("models", tmp_path)
    assert baseline["schema"] == bench.BASELINE_SCHEMA
    assert baseline["mode"] == "quick"
    assert bench.check_against_baseline(second, baseline) == []


def test_check_suite_gates_exact_exploration_counters(tmp_path):
    report = bench.run_suite("check", quick=True)
    names = [w.name for w in report.workloads]
    # All five protocols, hierarchical included.
    assert len(names) == 5
    assert any("hierarchical" in name for name in names)
    for workload in report.workloads:
        assert workload.gate == ("states", "steps_applied")
        assert workload.counters["states"] > 0
        assert workload.counters["steps_applied"] > 0
    path = bench.write_baseline(report, tmp_path)
    assert path.endswith("BENCH_check.json")
    baseline = bench.load_baseline("check", tmp_path)
    assert bench.check_against_baseline(report, baseline) == []


def test_check_suite_is_registered():
    assert "check" in bench.suite_names()


def test_unknown_suite_rejected():
    with pytest.raises(ValueError):
        bench.run_suite("nope")


def _fake_report(counter_value):
    return bench.BenchReport(
        suite="kernel",
        mode="quick",
        workloads=[
            bench.WorkloadResult(
                name="w",
                wall_s=0.1,
                counters={"events_processed": counter_value},
                gate=("events_processed",),
            )
        ],
    )


def test_gate_flags_regressions_and_passes_improvements():
    baseline = _fake_report(1_000).to_jsonable()
    # Within tolerance: pass.
    assert bench.check_against_baseline(_fake_report(1_150), baseline) == []
    # Improvement: pass.
    assert bench.check_against_baseline(_fake_report(500), baseline) == []
    # >20% growth: regression.
    problems = bench.check_against_baseline(_fake_report(1_300), baseline)
    assert len(problems) == 1
    assert "events_processed" in problems[0]
    assert "+30.0%" in problems[0]


def test_gate_rejects_mode_mismatch_and_missing_workloads():
    baseline = _fake_report(1_000).to_jsonable()
    full_run = _fake_report(1_000)
    full_run.mode = "full"
    assert any(
        "mode" in p for p in bench.check_against_baseline(full_run, baseline)
    )
    empty = bench.BenchReport(suite="kernel", mode="quick")
    assert any(
        "missing" in p for p in bench.check_against_baseline(empty, baseline)
    )


def test_committed_baselines_are_current_schema():
    """The checked-in baselines must stay loadable by this harness."""
    for suite in bench.suite_names():
        baseline = bench.load_baseline(suite, ".")
        if baseline is None:  # running from an unusual cwd
            pytest.skip("baselines not visible from test cwd")
        assert baseline["schema"] == bench.BASELINE_SCHEMA
        assert baseline["mode"] == "quick"
        for entry in baseline["workloads"].values():
            assert entry["gate"]
            assert all(g in entry["counters"] for g in entry["gate"])
        # And they are valid JSON fixtures byte-for-byte re-emittable.
        json.dumps(baseline)
