"""Tests for parameter-sensitivity sweeps."""

import pytest

from repro.core.config import Protocol, SystemConfig
from repro.core.sensitivity import (
    SUPPORTED_PARAMETERS,
    apply_parameter,
    model_sensitivity_sweep,
    sensitivity_sweep,
)


def test_supported_parameter_names():
    assert set(SUPPORTED_PARAMETERS) == {
        "cache_size_bytes",
        "memory_access_ps",
        "ring_width_bits",
        "ring_clock_ps",
        "block_size",
        "num_processors",
        "bus_clock_ps",
        "cache_response_ps",
        "directory_lookup_ps",
    }


def test_apply_parameter_returns_modified_copy():
    base = SystemConfig(num_processors=4)
    changed = apply_parameter(base, "cache_size_bytes", 32 * 1024)
    assert changed.cache.size_bytes == 32 * 1024
    assert base.cache.size_bytes == 128 * 1024  # original untouched
    assert apply_parameter(base, "ring_width_bits", 64).ring.width_bits == 64
    assert (
        apply_parameter(base, "memory_access_ps", 70_000).memory.access_ps
        == 70_000
    )
    assert apply_parameter(base, "block_size", 32).cache.block_size == 32


def test_unknown_parameter_lists_options():
    with pytest.raises(KeyError) as excinfo:
        apply_parameter(SystemConfig(num_processors=4), "nonsense", 1)
    assert "cache_size_bytes" in str(excinfo.value)


def test_cache_size_sweep_is_flat_by_construction():
    """Known workload-model property: miss rates are episode-length
    driven (calibrated to Table 2), so cache capacity barely binds --
    the sweep must be near-flat, never wildly non-monotone."""
    rows = sensitivity_sweep(
        "mp3d",
        4,
        "cache_size_bytes",
        [8 * 1024, 128 * 1024],
        data_refs=1_500,
    )
    assert len(rows) == 2
    small, large = rows
    assert small["total miss %"] == pytest.approx(
        large["total miss %"], rel=0.05
    )


def test_memory_latency_sweep_moves_miss_latency():
    rows = sensitivity_sweep(
        "mp3d",
        4,
        "memory_access_ps",
        [70_000, 280_000],
        data_refs=1_200,
    )
    fast, slow = rows
    assert slow["miss latency (ns)"] > fast["miss latency (ns)"]
    assert slow["proc util"] < fast["proc util"]


def test_ring_width_sweep_lowers_utilization():
    rows = sensitivity_sweep(
        "mp3d",
        4,
        "ring_width_bits",
        [16, 64],
        data_refs=1_200,
    )
    narrow, wide = rows
    assert wide["net util"] < narrow["net util"]


def test_model_layer_parameter_setters_modify_the_right_field():
    base = SystemConfig(num_processors=4)
    assert apply_parameter(base, "num_processors", 16).num_processors == 16
    assert apply_parameter(base, "bus_clock_ps", 5_000).bus.clock_ps == 5_000
    assert (
        apply_parameter(
            base, "cache_response_ps", 90_000
        ).memory.cache_response_ps
        == 90_000
    )
    assert (
        apply_parameter(
            base, "directory_lookup_ps", 8_000
        ).memory.directory_lookup_ps
        == 8_000
    )
    assert base.num_processors == 4  # original untouched


def test_model_sensitivity_sweep_resolves_values_from_one_extraction():
    rows = model_sensitivity_sweep(
        "mp3d",
        4,
        "memory_access_ps",
        [70_000, 280_000],
        data_refs=1_200,
        use_grid=False,  # scalar path; grid equality is tested in test_grid_models
    )
    fast, slow = rows
    assert slow["miss latency (ns)"] > fast["miss latency (ns)"]
    assert slow["proc util"] < fast["proc util"]
    # The analytic axis can move parameters a re-simulation also
    # supports, at a fraction of the cost, from the same extraction.
    sizes = model_sensitivity_sweep(
        "mp3d",
        4,
        "num_processors",
        [4, 32],
        data_refs=1_200,
        use_grid=False,
    )
    assert sizes[1]["net util"] > sizes[0]["net util"]
