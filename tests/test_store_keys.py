"""Cross-version stability of the persistent store's cache keys.

The content-addressed store is only shareable across sessions (and
across code versions that did not change the serialised format) if the
key derivation is stable: canonical JSON in, SHA-256 out, with no
``repr()``- or ``hash()``-derived components anywhere in the setup
payload.  These tests pin that down:

* a checked-in golden fingerprint for a fixture setup -- any
  accidental change to key derivation (field ordering, float
  formatting, enum rendering, schema bump) fails loudly here, so
  bumping :data:`repro.core.store.SCHEMA_VERSION` is a conscious act
  that updates this constant alongside;
* a recursive audit that the setup payload contains only JSON scalar
  types (no enums, dataclasses, tuples or other objects whose JSON
  rendering could drift between Python versions).
"""

from __future__ import annotations

import json

from repro.core.config import Protocol, SystemConfig
from repro.core.store import (
    SCHEMA_VERSION,
    config_from_jsonable,
    config_to_jsonable,
    result_fingerprint,
)

#: Fingerprint of the fixture setup below under schema version 2.
#: Regenerate (and review the diff that forced it) with:
#:   python -c "from repro.core.store import result_fingerprint;
#:              from repro.core.config import *;
#:              print(result_fingerprint('mp3d', 2000,
#:                    SystemConfig(num_processors=8)))"
GOLDEN_KEY = "0cf869aae1f1b6630d4d6a8e9623f0c7d41efec25d7438977f5eab79bcd9fe8a"


def _fixture_config() -> SystemConfig:
    return SystemConfig(num_processors=8, protocol=Protocol.SNOOPING)


def test_fixture_fingerprint_matches_golden_string():
    assert SCHEMA_VERSION == 2  # bumping the schema must retire this key
    assert result_fingerprint("mp3d", 2000, _fixture_config()) == GOLDEN_KEY


def test_fingerprint_varies_with_every_setup_component():
    from dataclasses import replace

    base = _fixture_config()
    variants = [
        result_fingerprint("water", 2000, base),
        result_fingerprint("mp3d", 2001, base),
        result_fingerprint("mp3d", 2000, replace(base, seed=base.seed + 1)),
        result_fingerprint(
            "mp3d", 2000, replace(base, protocol=Protocol.DIRECTORY)
        ),
        result_fingerprint(
            "mp3d",
            2000,
            replace(base, ring=replace(base.ring, clock_ps=base.ring.clock_ps + 1)),
        ),
        result_fingerprint("mp3d", 2000, base, salt="gen1"),
    ]
    assert len(set(variants + [GOLDEN_KEY])) == len(variants) + 1


def test_equivalent_float_spellings_share_a_key():
    """Numerically equal config scalars must hit the same cache entry.

    Configs built through arithmetic (``1e9 / mhz``, unit conversions)
    often carry integral floats where hand-written configs carry ints;
    both describe the same experiment, so ``8.0`` vs ``8`` and ``-0.0``
    vs ``0.0`` must not cause spurious cache misses.
    """
    from dataclasses import replace

    base = _fixture_config()
    # Integral float spelling of an int field collapses to the int key
    # (and therefore still matches the golden fingerprint).
    as_float = replace(base, ring=replace(base.ring, clock_ps=2000.0))
    assert result_fingerprint("mp3d", 2000, as_float) == GOLDEN_KEY
    # Negative zero collapses to plain zero.
    minus_zero = replace(
        base, memory=replace(base.memory, directory_lookup_ps=-0.0)
    )
    plus_zero = replace(
        base, memory=replace(base.memory, directory_lookup_ps=0.0)
    )
    assert result_fingerprint("mp3d", 2000, minus_zero) == result_fingerprint(
        "mp3d", 2000, plus_zero
    )
    assert result_fingerprint("mp3d", 2000, minus_zero) == GOLDEN_KEY
    # Genuinely different values still get their own keys.
    fractional = replace(base, ring=replace(base.ring, clock_ps=2000.5))
    assert result_fingerprint("mp3d", 2000, fractional) != GOLDEN_KEY


def _assert_json_scalars(value, path="config"):
    """Only dict/str keys and str/int/float/bool/None leaves allowed."""
    if isinstance(value, dict):
        for key, nested in value.items():
            assert isinstance(key, str), f"non-string key at {path}: {key!r}"
            _assert_json_scalars(nested, f"{path}.{key}")
    elif isinstance(value, list):
        for index, nested in enumerate(value):
            _assert_json_scalars(nested, f"{path}[{index}]")
    else:
        assert value is None or isinstance(
            value, (str, int, float, bool)
        ), f"non-JSON-scalar at {path}: {type(value).__name__}"


def test_key_payload_contains_only_json_scalars():
    payload = config_to_jsonable(_fixture_config())
    _assert_json_scalars(payload)
    # And it is genuinely canonical: a JSON round-trip is a fixed point.
    assert json.loads(json.dumps(payload)) == payload


def test_config_payload_roundtrips_exactly():
    config = _fixture_config()
    assert config_from_jsonable(config_to_jsonable(config)) == config
