"""Tests for trace file I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Protocol
from repro.core.experiment import run_simulation
from repro.memory.address import AddressMap
from repro.traces.benchmarks import benchmark_spec
from repro.traces.io import (
    CONTINUATION,
    TraceSetInfo,
    read_trace,
    read_trace_set,
    write_trace,
    write_trace_set,
)
from repro.traces.records import TraceRecord
from repro.traces.synthetic import SyntheticTraceGenerator

RECORDS = [
    TraceRecord(0, 0x1000, False),
    TraceRecord(3, 0x2004, True),
    TraceRecord(1, (1 << 40) + 16, False),
]


def test_roundtrip(tmp_path):
    path = tmp_path / "cpu0.trace"
    count = write_trace(path, RECORDS)
    assert count == len(RECORDS)
    assert list(read_trace(path)) == RECORDS


def test_empty_trace_roundtrip(tmp_path):
    path = tmp_path / "empty.trace"
    assert write_trace(path, []) == 0
    assert list(read_trace(path)) == []


def test_large_instruction_count_splits_and_rejoins(tmp_path):
    path = tmp_path / "big.trace"
    records = [TraceRecord(200_000, 0x40, True)]
    write_trace(path, records)
    assert list(read_trace(path)) == records


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bogus.trace"
    path.write_bytes(b"NOPE!!" + b"\x00" * 32)
    with pytest.raises(ValueError):
        list(read_trace(path))


def test_truncated_record_rejected(tmp_path):
    path = tmp_path / "trunc.trace"
    write_trace(path, RECORDS)
    data = path.read_bytes()
    path.write_bytes(data[:-3])
    with pytest.raises(ValueError):
        list(read_trace(path))


def test_sentinel_address_rejected(tmp_path):
    path = tmp_path / "bad.trace"
    with pytest.raises(ValueError):
        write_trace(path, [TraceRecord(0, CONTINUATION, False)])


def test_trace_set_roundtrip(tmp_path):
    spec = benchmark_spec("mp3d", 8)
    amap = AddressMap(8, 16, seed=3)
    generator = SyntheticTraceGenerator(spec, amap, seed=3)
    info = TraceSetInfo("mp3d", 8, 300, seed=3)
    write_trace_set(
        tmp_path / "set",
        (generator.stream(node, 300) for node in range(8)),
        info,
    )
    loaded_info, streams = read_trace_set(tmp_path / "set")
    assert loaded_info.benchmark == "mp3d"
    assert loaded_info.processors == 8
    for node, stream in enumerate(streams):
        assert list(stream) == list(generator.stream(node, 300))


def test_trace_set_processor_mismatch(tmp_path):
    info = TraceSetInfo("mp3d", 4, 10, seed=1)
    with pytest.raises(ValueError):
        write_trace_set(tmp_path / "set", [iter(RECORDS)], info)


def test_bad_manifest_rejected(tmp_path):
    root = tmp_path / "set"
    root.mkdir()
    (root / "manifest.json").write_text('{"format": "something-else"}')
    with pytest.raises(ValueError):
        read_trace_set(root)


def test_simulation_from_trace_files_matches_generated(tmp_path):
    """Driving the simulator from persisted traces reproduces the
    generated-trace run exactly (determinism across the I/O layer)."""
    spec = benchmark_spec("mp3d", 4)
    fresh = run_simulation(spec, data_refs=500)

    amap_seed = fresh.config.seed
    amap = AddressMap(4, 16, seed=amap_seed)
    generator = SyntheticTraceGenerator(spec, amap, seed=amap_seed)
    info = TraceSetInfo("mp3d", 4, 500, seed=amap_seed)
    write_trace_set(
        tmp_path / "set",
        (generator.stream(node, 500) for node in range(4)),
        info,
    )
    _, streams = read_trace_set(tmp_path / "set")
    replayed = run_simulation(spec, traces=streams)
    assert replayed.elapsed_ps == fresh.elapsed_ps
    assert replayed.processor_utilization == fresh.processor_utilization
    assert replayed.stats.probes_sent == fresh.stats.probes_sent


def test_run_simulation_rejects_wrong_stream_count():
    spec = benchmark_spec("mp3d", 4)
    with pytest.raises(ValueError):
        run_simulation(spec, traces=[iter(RECORDS)])


@given(
    st.lists(
        st.tuples(
            st.integers(0, 300_000),
            st.integers(0, (1 << 63)),
            st.booleans(),
        ),
        max_size=60,
    )
)
@settings(max_examples=30, deadline=None)
def test_roundtrip_property(tmp_path_factory, raw):
    records = [TraceRecord(*fields) for fields in raw]
    path = tmp_path_factory.mktemp("traces") / "t.trace"
    write_trace(path, records)
    assert list(read_trace(path)) == records
