"""Unit tests for memory banks."""

import pytest

from repro.memory.bank import MEMORY_ACCESS_PS, MemoryBank, build_banks
from repro.sim.kernel import Simulator


def test_paper_access_time_constant():
    assert MEMORY_ACCESS_PS == 140_000  # 140 ns, section 4.1


def test_single_access_takes_access_time(sim):
    bank = MemoryBank(sim, node=0)
    done = []

    def body():
        yield bank.access()
        done.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert done == [MEMORY_ACCESS_PS]


def test_accesses_queue_fifo(sim):
    bank = MemoryBank(sim, node=0)
    done = []

    def body(tag):
        yield bank.access()
        done.append((tag, sim.now))

    sim.spawn(body("a"))
    sim.spawn(body("b"))
    sim.run()
    assert done == [("a", 140_000), ("b", 280_000)]
    assert bank.mean_wait() == pytest.approx(70_000)


def test_custom_access_time(sim):
    bank = MemoryBank(sim, node=0, access_time=50_000)
    done = []

    def body():
        yield bank.access()
        done.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert done == [50_000]


def test_build_banks_one_per_node(sim):
    banks = build_banks(sim, 8)
    assert len(banks) == 8
    assert [bank.node for bank in banks] == list(range(8))


def test_utilization(sim):
    bank = MemoryBank(sim, node=0)

    def body():
        yield bank.access()
        yield sim.timeout(60_000)

    sim.spawn(body())
    sim.run()
    assert bank.utilization(sim.now) == pytest.approx(0.7)


def test_request_count(sim):
    bank = MemoryBank(sim, node=0)

    def body():
        yield bank.access()
        yield bank.access()

    sim.spawn(body())
    sim.run()
    assert bank.requests == 2
