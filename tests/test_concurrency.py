"""Concurrency behaviour of the protocol engines.

Verifies the shared-read-miss overlap that keeps invalidation storms
from serialising (DESIGN.md §5.3a), and that the gated ownership
commits stay consistent when many readers hit a dirty block at once.
"""

import pytest

from repro.core.config import Protocol
from repro.memory.cache import AccessOutcome
from repro.memory.states import CacheState
from tests.conftest import make_engine, run_reference


def concurrent_reads(engine, sim, nodes, address):
    """Issue read misses from several nodes at the same instant."""
    latencies = {}

    def body(node):
        outcome = engine.caches[node].classify(address, False)
        assert outcome is AccessOutcome.READ_MISS
        latency = yield from engine.miss(node, address, outcome)
        latencies[node] = latency

    for node in nodes:
        sim.spawn(body(node), name=f"rd{node}")
    sim.run()
    return latencies


@pytest.mark.parametrize(
    "protocol",
    [Protocol.SNOOPING, Protocol.DIRECTORY, Protocol.LINKED_LIST, Protocol.BUS],
)
def test_concurrent_clean_reads_all_complete(protocol):
    sim, engine = make_engine(protocol)
    address = engine.address_map.shared_block_address(3)
    latencies = concurrent_reads(engine, sim, range(4), address)
    assert len(latencies) == 4
    for node in range(4):
        assert engine.caches[node].state_of(address) is CacheState.RS
    engine.check_invariants()


@pytest.mark.parametrize(
    "protocol", [Protocol.SNOOPING, Protocol.DIRECTORY]
)
def test_concurrent_clean_reads_overlap_on_ring(protocol):
    """Shared-mode read misses must overlap: the slowest of four
    simultaneous readers finishes far sooner than four serial
    transactions would."""
    sim, engine = make_engine(protocol)
    address = engine.address_map.shared_block_address(3)
    home = engine.address_map.home_of(address)
    solo_sim, solo_engine = make_engine(protocol)
    requester = next(n for n in range(4) if n != home)
    solo_latency = run_reference(solo_sim, solo_engine, requester, address, False)

    readers = [n for n in range(4) if n != home]
    latencies = concurrent_reads(engine, sim, readers, address)
    slowest = max(latencies.values())
    # The transactions overlap on the ring; only the home bank
    # serialises (one 140 ns access per reader).  Full transaction
    # serialisation would cost ~len(readers) * solo.
    bank_ps = engine.config.memory.access_ps
    assert slowest < solo_latency + len(readers) * bank_ps
    assert slowest < 0.85 * len(readers) * solo_latency


@pytest.mark.parametrize(
    "protocol",
    [Protocol.SNOOPING, Protocol.DIRECTORY, Protocol.LINKED_LIST, Protocol.BUS],
)
def test_concurrent_reads_of_dirty_block_commit_once(protocol):
    """Many simultaneous readers of a dirty block: exactly one
    ownership transfer commits, every reader ends RS, and the single
    memory update is accounted once."""
    sim, engine = make_engine(protocol)
    address = engine.address_map.shared_block_address(3)
    run_reference(sim, engine, 0, address, True)  # node 0 owns WE
    readers = [1, 2, 3]
    concurrent_reads(engine, sim, readers, address)
    sim.run()
    for node in readers:
        assert engine.caches[node].state_of(address) is CacheState.RS
    assert engine.caches[0].state_of(address) is CacheState.RS
    assert engine.stats.sharing_writebacks == 1
    engine.check_invariants()


@pytest.mark.parametrize(
    "protocol", [Protocol.SNOOPING, Protocol.DIRECTORY, Protocol.LINKED_LIST]
)
def test_write_waits_for_concurrent_readers(protocol):
    """A write issued while readers are in flight must observe them:
    afterwards the writer holds the only copy."""
    sim, engine = make_engine(protocol)
    address = engine.address_map.shared_block_address(3)
    results = {}

    def reader(node):
        outcome = engine.caches[node].classify(address, False)
        yield from engine.miss(node, address, outcome)
        results[f"r{node}"] = sim.now

    def writer(node):
        yield sim.timeout(1_000)  # arrive while the reads are queued
        outcome = engine.caches[node].classify(address, True)
        yield from engine.miss(node, address, outcome)
        results["w"] = sim.now

    sim.spawn(reader(0))
    sim.spawn(reader(1))
    sim.spawn(writer(2))
    sim.run()
    assert engine.caches[2].state_of(address) is CacheState.WE
    assert engine.caches[0].state_of(address) is CacheState.INV
    assert engine.caches[1].state_of(address) is CacheState.INV
    assert results["w"] >= max(results["r0"], results["r1"])
    engine.check_invariants()


def test_mixed_block_traffic_runs_concurrently():
    """Transactions on different blocks overlap freely (wall-clock of
    N independent misses is far less than N serial misses)."""
    sim, engine = make_engine(Protocol.SNOOPING)
    # One block per page so homes (and banks) differ.
    addresses = [
        engine.address_map.shared_block_address(i * 300) for i in range(4)
    ]
    finish = {}

    def body(node, address):
        outcome = engine.caches[node].classify(address, False)
        yield from engine.miss(node, address, outcome)
        finish[node] = sim.now

    for node, address in enumerate(addresses):
        sim.spawn(body(node, address))
    sim.run()
    solo_sim, solo_engine = make_engine(Protocol.SNOOPING)
    solo = run_reference(solo_sim, solo_engine, 0, addresses[0], False)
    assert max(finish.values()) < 2.5 * solo
