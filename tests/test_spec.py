"""The guarded-action protocol specs (repro.spec) and their wiring.

One source of truth for coherence transitions, enforced at three
layers, each pinned here:

* **Structure.**  Every registered spec passes
  :func:`repro.spec.validate_spec`; the union of commits across all
  protocols is exactly ``ALLOWED_TRANSITIONS``; the flat engines'
  ``COMMIT_TRANSITIONS`` tuples are equal to the spec-derived
  :func:`repro.spec.commit_table`.
* **Execution.**  The explorer's ``expansion="spec"`` mode -- the live
  engine cross-checked step-by-step against the spec -- is
  bit-identical (visited fingerprints, counters, completeness) to the
  plain engine expansion for every protocol; the engine-free
  ``spec-only`` mode matches on the race-free alphabet.
* **Sensitivity.**  A single-field mutation of one rule (guard,
  next-state, dropped action) is caught -- by the validator when it is
  structurally illegal, by the exhaustive search as a
  ``spec-divergence`` counterexample when it is structurally fine but
  disagrees with the engine.

Plus the import-direction lints: engine modules may consume
``repro.spec`` at module level only (import-time table derivation,
never on the simulation path), and ``repro.spec`` itself must stay
free of observer packages so that rule holds transitively.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

import repro
from repro import check
from repro.memory.states import ALLOWED_TRANSITIONS, CacheState
from repro.spec import (
    SPECS,
    SpecValidationError,
    commit_table,
    diff_tables,
    mutate_rule,
    render_table,
    spec_for,
    validate_spec,
)

PROTOCOLS = tuple(SPECS)


# ----------------------------------------------------------------------
# Structure: validation, the commit-table derivation, the flat engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_registered_specs_validate(protocol):
    validate_spec(spec_for(protocol))


def _allowed_commits():
    return {
        (action, before, after)
        for action, pairs in ALLOWED_TRANSITIONS.items()
        for before, after in pairs
    }


def test_specs_jointly_cover_allowed_transitions_exactly():
    allowed = _allowed_commits()
    covered = set()
    for protocol in PROTOCOLS:
        commits = spec_for(protocol).commits()
        assert commits <= allowed
        covered |= commits
    assert covered == allowed


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_commit_table_is_canonical_and_legal(protocol):
    table = commit_table(protocol)
    assert len(table) == len(set(table))
    assert set(table) <= _allowed_commits()
    # Deterministic: derivation is order-stable across calls.
    assert table == commit_table(protocol)


@pytest.mark.parametrize(
    "protocol, module_name",
    [
        ("snooping", "repro.ring.flatsnooping"),
        ("directory", "repro.ring.flatdirectory"),
    ],
)
def test_flat_engines_derive_commit_tables_from_the_spec(
    protocol, module_name
):
    import importlib

    module = importlib.import_module(module_name)
    assert tuple(module.COMMIT_TRANSITIONS) == commit_table(protocol)


def test_render_and_diff_are_stable_text():
    table = render_table(spec_for("linkedlist"))
    assert "read-miss-dirty" in table and "head-downgrade" in table
    same = diff_tables(spec_for("bus"), spec_for("bus"))
    assert all(line.startswith("=") or "---" in line or "+++" in line
               for line in same.splitlines())
    cross = diff_tables(spec_for("snooping"), spec_for("directory"))
    assert "~ read-miss-clean" in cross


# ----------------------------------------------------------------------
# Execution: spec expansion is bit-identical to engine expansion
# ----------------------------------------------------------------------
def _fingerprint(report):
    return (
        report.states,
        report.steps_applied,
        report.states_expanded,
        report.complete,
        report.ok,
        tuple(report.visited_fingerprints),
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_spec_expansion_bit_identical_to_engine(protocol):
    engine = check.explore(protocol, nodes=2, lines=2)
    spec = check.explore(protocol, nodes=2, lines=2, expansion="spec")
    assert engine.ok and spec.ok
    assert engine.complete and spec.complete
    assert _fingerprint(engine) == _fingerprint(spec)
    assert spec.expansion == "spec"


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_spec_only_expansion_matches_engine_without_races(protocol):
    engine = check.explore(protocol, nodes=2, lines=2, races=False)
    pure = check.explore(
        protocol, nodes=2, lines=2, races=False, expansion="spec-only"
    )
    assert engine.ok and pure.ok
    assert engine.complete and pure.complete
    assert _fingerprint(engine) == _fingerprint(pure)


def test_spec_only_expansion_rejects_races():
    with pytest.raises(ValueError, match="race"):
        check.explore("bus", nodes=2, lines=1, expansion="spec-only")


def test_expansion_and_harness_factory_are_mutually_exclusive():
    with pytest.raises(ValueError, match="mutually exclusive"):
        check.explore(
            "bus",
            nodes=2,
            lines=1,
            expansion="spec",
            harness_factory=check.SpecHarness,
        )
    with pytest.raises(ValueError, match="unknown expansion"):
        check.explore("bus", nodes=2, lines=1, expansion="telepathy")


# ----------------------------------------------------------------------
# Sensitivity: single-field mutations are caught
# ----------------------------------------------------------------------
def test_mutated_next_state_fails_validation():
    # A granted read fill must land in RS; pointing the rule at WE is
    # a move its actions do not achieve.
    mutant = mutate_rule(
        spec_for("snooping"), "read-miss-clean", next_state=CacheState.WE
    )
    with pytest.raises(SpecValidationError):
        validate_spec(mutant)


def test_dropped_action_fails_validation():
    # Without the fill the requester cannot leave INV.
    mutant = mutate_rule(
        spec_for("directory"), "read-miss-clean", drop_action="fill-shared"
    )
    with pytest.raises(SpecValidationError):
        validate_spec(mutant)


def test_mutated_guard_is_caught_by_exploration():
    # Guard flipped to line-dirty: the very first clean-line read has
    # no enabled rule.  mutate_rule deliberately skips validation, so
    # this pins that the exhaustive search alone reports the mutant as
    # a spec divergence -- the second, independent tripwire.
    mutant = mutate_rule(
        spec_for("snooping"), "read-miss-clean", guard="line-dirty"
    )

    class MutantHarness(check.SpecCheckedHarness):
        spec_registry = {"snooping": mutant}

    report = check.explore(
        "snooping", nodes=2, lines=1, harness_factory=MutantHarness
    )
    assert not report.ok
    assert report.counterexample.kind == "spec-divergence"
    assert report.counterexample.depth == 1


def test_mutated_next_state_is_caught_by_exploration():
    # The upgrade rule mispredicts where the writer lands (INV instead
    # of WE).  Validation is skipped, so the engine comparison is what
    # exposes it: the engine commits the upgrade to WE, the spec's
    # prediction set does not contain that state.
    mutant = mutate_rule(
        spec_for("bus"),
        "upgrade-clean",
        next_state=CacheState.INV,
        drop_action="commit-upgrade",
    )

    class MutantHarness(check.SpecCheckedHarness):
        spec_registry = {"bus": mutant}

    report = check.explore(
        "bus", nodes=2, lines=1, harness_factory=MutantHarness
    )
    assert not report.ok
    assert report.counterexample.kind == "spec-divergence"


# ----------------------------------------------------------------------
# Import direction: spec at import time only, observer-free spec
# ----------------------------------------------------------------------
ENGINE_MODULES = (
    "ring/base.py",
    "ring/scheduler.py",
    "ring/flatring.py",
    "ring/flatsnooping.py",
    "ring/flatdirectory.py",
    "ring/snooping.py",
    "ring/directory.py",
    "ring/linkedlist.py",
    "ring/hierarchical.py",
    "bus/bus.py",
    "sim/kernel.py",
    "sim/flatcore.py",
)

SPEC_MODULES = ("spec/__init__.py", "spec/core.py", "spec/interp.py")


def _imports(tree, *, nested_only=False):
    """(module-name, was-nested) for every import in the tree."""
    top = set(tree.body)
    for node in ast.walk(tree):
        nested = node not in top
        if nested_only and not nested:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, nested
        elif isinstance(node, ast.ImportFrom):
            yield node.module or "", nested


@pytest.mark.parametrize("relative", ENGINE_MODULES)
def test_engine_modules_import_spec_at_module_level_only(relative):
    """Deriving tables from the spec at import is sanctioned; pulling
    it in from a function body would put the spec layer on the
    simulation path."""
    root = pathlib.Path(repro.__file__).parent
    tree = ast.parse((root / relative).read_text())
    for module, _nested in _imports(tree, nested_only=True):
        assert not module.startswith("repro.spec"), (
            f"{relative} imports repro.spec inside a function body "
            "(simulation time); only module-level derivation is allowed"
        )


@pytest.mark.parametrize("relative", SPEC_MODULES)
@pytest.mark.parametrize("package", ("repro.obs", "repro.check", "numpy"))
def test_spec_package_is_observer_free(relative, package):
    """repro.spec is imported by engine modules at import time, so it
    must not (even transitively, at any nesting) drag in observers or
    numpy -- that would defeat the hot-path import lint."""
    root = pathlib.Path(repro.__file__).parent
    tree = ast.parse((root / relative).read_text())
    for module, _nested in _imports(tree):
        assert not module.startswith(package), (
            f"{relative} imports {package}; repro.spec must stay "
            "stdlib + repro.memory.states only"
        )


# ----------------------------------------------------------------------
# CLI: the spec verb
# ----------------------------------------------------------------------
def test_cli_spec_prints_tables(capsys):
    from repro.cli import main

    assert main(["spec", "--protocol", "linkedlist"]) == 0
    out = capsys.readouterr().out
    assert "linkedlist (view: list)" in out
    assert "read-miss-dirty" in out

    assert main(["spec"]) == 0
    out = capsys.readouterr().out
    for protocol in PROTOCOLS:
        assert protocol in out


def test_cli_spec_diff(capsys):
    from repro.cli import main

    assert main(["spec", "--protocol", "snooping", "--diff", "bus"]) == 0
    out = capsys.readouterr().out
    assert "--- snooping" in out and "+++ bus" in out

    assert main(["spec", "--diff", "bus"]) == 2  # needs one protocol
    assert "--diff needs a single --protocol" in capsys.readouterr().err


def test_cli_spec_verify(capsys):
    from repro.cli import main

    code = main(
        ["spec", "--verify", "--protocol", "bus", "--nodes", "2",
         "--lines", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "bus: spec valid" in out
    assert "engine/spec agree" in out
