"""Tests for measurement-window (warm-up) support."""

import pytest

from repro.core.config import Protocol
from repro.core.experiment import (
    build_engine,
    reset_engine_statistics,
    run_simulation,
)
from repro.core.config import SystemConfig
from repro.sim.kernel import Simulator
from tests.conftest import run_reference


REFS = 1_500


def test_warmup_reduces_measured_miss_rate():
    """Cold misses land in the warm-up window, not the measurement."""
    cold = run_simulation(
        "water", num_processors=4, protocol=Protocol.SNOOPING,
        data_refs=REFS,
    )
    warm = run_simulation(
        "water", num_processors=4, protocol=Protocol.SNOOPING,
        data_refs=REFS, warmup_refs=REFS,
    )
    assert (
        warm.trace.total_miss_rate_percent
        <= cold.trace.total_miss_rate_percent
    )


def test_warmup_counts_only_measured_references():
    warm = run_simulation(
        "mp3d", num_processors=4, protocol=Protocol.SNOOPING,
        data_refs=REFS, warmup_refs=500,
    )
    assert warm.trace.data_refs == 4 * REFS


def test_warmup_zero_is_identity():
    plain = run_simulation(
        "mp3d", num_processors=4, protocol=Protocol.SNOOPING,
        data_refs=REFS,
    )
    explicit = run_simulation(
        "mp3d", num_processors=4, protocol=Protocol.SNOOPING,
        data_refs=REFS, warmup_refs=0,
    )
    assert plain.elapsed_ps == explicit.elapsed_ps
    assert plain.stats.probes_sent == explicit.stats.probes_sent


def test_warmup_metrics_stay_sane():
    for protocol in (Protocol.DIRECTORY, Protocol.BUS):
        result = run_simulation(
            "mp3d", num_processors=4, protocol=protocol,
            data_refs=800, warmup_refs=400,
        )
        assert 0.0 < result.processor_utilization <= 1.0
        assert 0.0 <= result.network_utilization <= 1.0
        assert result.shared_miss_latency_ns > 0.0


def test_reset_engine_statistics_clears_counts_keeps_state():
    sim = Simulator()
    config = SystemConfig(num_processors=4, protocol=Protocol.SNOOPING)
    engine = build_engine(sim, config)
    address = engine.address_map.shared_block_address(1)
    run_reference(sim, engine, 0, address, True)
    assert engine.stats.probes_sent >= 0
    assert engine.caches[0].stats.writes == 1

    reset_engine_statistics(engine)
    assert engine.stats.total_misses() == 0
    assert engine.caches[0].stats.references == 0
    assert all(bank.requests == 0 for bank in engine.banks)
    # Coherence state survives: the warm WE copy still hits.
    from repro.memory.cache import AccessOutcome

    assert engine.caches[0].classify(address, True) is AccessOutcome.HIT
    block = engine.address_map.block_of(address)
    assert engine.dirty_bits.is_dirty(block)


def test_reset_statistics_hierarchical_and_bus():
    for protocol in (Protocol.HIERARCHICAL, Protocol.BUS):
        sim = Simulator()
        config = SystemConfig(num_processors=4, protocol=protocol)
        if protocol is Protocol.HIERARCHICAL:
            from dataclasses import replace

            config = replace(config, ring=replace(config.ring, clusters=2))
        engine = build_engine(sim, config)
        address = engine.address_map.shared_block_address(1)
        run_reference(sim, engine, 0, address, False)
        reset_engine_statistics(engine)
        assert engine.stats.total_misses() == 0
