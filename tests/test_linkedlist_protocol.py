"""Protocol tests for the SCI-style linked-list ring engine."""

import pytest

from repro.core.config import Protocol
from repro.core.metrics import MissClass
from repro.memory.states import CacheState
from tests.conftest import make_engine, run_reference
from tests.test_snooping import remote_shared_address


@pytest.fixture
def setup():
    sim, engine = make_engine(Protocol.LINKED_LIST)
    return sim, engine


def shared_address(engine, index=0):
    return engine.address_map.shared_block_address(index)


def entry_for(engine, address):
    return engine.directory_for(address).entry(
        engine.address_map.block_of(address)
    )


# ----------------------------------------------------------------------
# Sharing-list maintenance
# ----------------------------------------------------------------------
def test_readers_prepend_newest_first(setup):
    sim, engine = setup
    address = shared_address(engine)
    for node in (0, 1, 2):
        run_reference(sim, engine, node, address, False)
    assert entry_for(engine, address).chain == [2, 1, 0]
    assert entry_for(engine, address).head == 2


def test_write_collapses_list(setup):
    sim, engine = setup
    address = shared_address(engine)
    for node in (0, 1, 2):
        run_reference(sim, engine, node, address, False)
    run_reference(sim, engine, 3, address, True)
    entry = entry_for(engine, address)
    assert entry.chain == [3]
    assert entry.dirty
    for node in (0, 1, 2):
        assert engine.caches[node].state_of(address) is CacheState.INV
    engine.check_invariants()


def test_upgrade_purges_rest_of_list(setup):
    sim, engine = setup
    address = shared_address(engine)
    for node in (0, 1, 2):
        run_reference(sim, engine, node, address, False)
    run_reference(sim, engine, 1, address, True)  # upgrade from mid-list
    entry = entry_for(engine, address)
    assert entry.chain == [1]
    assert entry.dirty
    assert engine.caches[0].state_of(address) is CacheState.INV
    assert engine.caches[2].state_of(address) is CacheState.INV
    engine.check_invariants()


def test_read_of_dirty_block_forwards_to_head(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 1, address, True)
    run_reference(sim, engine, 3, address, False)
    entry = entry_for(engine, address)
    assert not entry.dirty
    assert entry.head == 3  # new reader prepends
    assert 1 in entry.chain
    assert engine.caches[1].state_of(address) is CacheState.RS


def test_clean_cached_miss_still_forwards(setup):
    """Unlike the full map, a miss on a *clean* cached block is routed
    through the head (extra traversals, Table 1)."""
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    home = engine.address_map.home_of(address)
    # First reader establishes a head that is not the home.
    first_reader = next(n for n in range(4) if n not in (0, home))
    run_reference(sim, engine, first_reader, address, False)
    blocks_before = engine.stats.blocks_sent
    run_reference(sim, engine, 0, address, False)
    # The block came from the head cache, not memory: still one block
    # message, but the probe path included the forward.
    assert engine.stats.blocks_sent == blocks_before + 1
    traversals = (
        engine.topology.distance(0, home)
        + engine.topology.distance(home, first_reader)
        + engine.topology.distance(first_reader, 0)
    ) // engine.topology.total_stages
    row = engine.stats.miss_traversals
    assert row.count(traversals) >= 1


def test_rs_eviction_triggers_background_detach(setup):
    sim, engine = setup
    num_lines = engine.caches[1].num_lines
    addr_a = shared_address(engine, 0)
    addr_b = engine.address_map.shared_block_address(num_lines)
    run_reference(sim, engine, 1, addr_a, False)
    assert 1 in entry_for(engine, addr_a).chain
    run_reference(sim, engine, 1, addr_b, False)
    sim.run()  # detach drains
    assert 1 not in entry_for(engine, addr_a).chain


def test_stale_head_merged_on_remiss(setup):
    """A node re-missing a block whose detach is still in flight must
    not be treated as its own head."""
    sim, engine = setup
    num_lines = engine.caches[1].num_lines
    addr_a = shared_address(engine, 0)
    addr_b = engine.address_map.shared_block_address(num_lines)
    run_reference(sim, engine, 1, addr_a, False)
    run_reference(sim, engine, 1, addr_b, False)  # evicts; detach queued
    run_reference(sim, engine, 1, addr_a, False)  # immediate re-miss
    sim.run()
    entry = entry_for(engine, addr_a)
    assert entry.chain.count(1) == 1
    assert engine.caches[1].state_of(addr_a) is CacheState.RS
    engine.check_invariants()


def test_dirty_victim_reclaim(setup):
    sim, engine = setup
    num_lines = engine.caches[0].num_lines
    addr_a = shared_address(engine, 0)
    addr_b = engine.address_map.shared_block_address(num_lines)
    run_reference(sim, engine, 0, addr_a, True)
    run_reference(sim, engine, 0, addr_b, False)
    run_reference(sim, engine, 0, addr_a, True)  # reclaim from buffer
    sim.run()
    entry = entry_for(engine, addr_a)
    assert entry.dirty and entry.head == 0
    assert engine.caches[0].state_of(addr_a) is CacheState.WE
    engine.check_invariants()


# ----------------------------------------------------------------------
# Traversal accounting (Table 1 semantics)
# ----------------------------------------------------------------------
def test_uncached_miss_is_one_traversal(setup):
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    run_reference(sim, engine, 0, address, False)
    assert engine.stats.miss_traversals.as_paper_row()["1"] == 100.0


def test_purge_traversals_bounded_by_sharer_count(setup):
    sim, engine = setup
    address = shared_address(engine)
    readers = [0, 1, 2, 3]
    for node in readers:
        run_reference(sim, engine, node, address, False)
    run_reference(sim, engine, 0, address, True)
    histogram = engine.stats.upgrade_traversals
    assert histogram.total == 1
    recorded = next(
        t for t in range(1, 10) if histogram.count(t) == 1
    )
    # Pointer round (<=1 traversal) + purge walk over 3 sharers
    # (<= 3 traversals).
    assert 1 <= recorded <= 4


def test_invalidation_worst_case_scales_with_sharers(setup):
    """With an adversarial list order the purge costs about one
    traversal per sharer (the paper's worst case)."""
    sim, engine = setup
    address = shared_address(engine)
    home = engine.address_map.home_of(address)
    # Readers in ring order 0,1,2,3 produce chain [3,2,1,0]: the walk
    # 3 -> 2 -> 1 -> 0 runs against the ring direction.
    for node in range(4):
        run_reference(sim, engine, node, address, False)
    run_reference(sim, engine, 3, address, True)  # head upgrades
    histogram = engine.stats.upgrade_traversals
    recorded = next(t for t in range(1, 10) if histogram.count(t) == 1)
    assert recorded >= 2  # adversarial order forces extra traversals


def test_private_data_bypasses_lists(setup):
    sim, engine = setup
    address = engine.address_map.private_block_address(3, 5)
    run_reference(sim, engine, 3, address, True)
    assert engine.stats.probes_sent == 0
    assert engine.stats.counts_by_class()[MissClass.PRIVATE] == 1
