"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import Protocol, SystemConfig
from repro.core.experiment import build_engine
from repro.core.store import temp_result_store
from repro.sim.kernel import Simulator


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store():
    """Keep the whole test session away from the user's ~/.cache/repro."""
    with temp_result_store():
        yield


@pytest.fixture
def temp_store():
    """A fresh throwaway persistent store (and memo) for one test."""
    from repro.core.experiment import clear_simulation_cache

    with temp_result_store() as store:
        clear_simulation_cache(disk=False)
        yield store
    clear_simulation_cache(disk=False)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def small_config() -> SystemConfig:
    """A small 4-node baseline system (fast to simulate)."""
    return SystemConfig(num_processors=4)


def make_engine(protocol: Protocol, num_processors: int = 4):
    """Fresh (sim, engine) pair for a protocol."""
    sim = Simulator()
    config = SystemConfig(num_processors=num_processors, protocol=protocol)
    return sim, build_engine(sim, config)


def run_reference(sim, engine, node: int, address: int, is_write: bool):
    """Drive one reference through an engine to completion.

    Returns the transaction latency in ps (0 for a hit).
    """
    from repro.memory.cache import AccessOutcome

    outcome = engine.caches[node].classify(address, is_write)
    if outcome is AccessOutcome.HIT:
        return 0
    box = {}

    def body():
        box["latency"] = yield from engine.miss(node, address, outcome)

    sim.spawn(body(), name="test-ref")
    sim.run()
    return box["latency"]
