"""Protocol tests for the snooping slotted-ring engine."""

import pytest

from repro.core.config import Protocol
from repro.core.metrics import MissClass
from repro.memory.states import CacheState
from tests.conftest import make_engine, run_reference


@pytest.fixture
def setup():
    sim, engine = make_engine(Protocol.SNOOPING)
    return sim, engine


def shared_address(engine, index=0):
    return engine.address_map.shared_block_address(index)


def remote_shared_address(engine, node, index_start=0):
    """A shared address whose home is NOT `node`."""
    for index in range(index_start, index_start + 10_000):
        address = engine.address_map.shared_block_address(index)
        if engine.address_map.home_of(address) != node:
            return address
    raise AssertionError("no remote shared block found")


def local_shared_address(engine, node, index_start=0):
    for index in range(index_start, index_start + 10_000):
        address = engine.address_map.shared_block_address(index)
        if engine.address_map.home_of(address) == node:
            return address
    raise AssertionError("no local shared block found")


# ----------------------------------------------------------------------
# Basic transactions
# ----------------------------------------------------------------------
def test_cold_read_installs_rs(setup):
    sim, engine = setup
    address = shared_address(engine)
    latency = run_reference(sim, engine, 0, address, False)
    assert engine.caches[0].state_of(address) is CacheState.RS
    assert latency > 0


def test_cold_write_installs_we_and_sets_dirty(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 0, address, True)
    block = engine.address_map.block_of(address)
    assert engine.caches[0].state_of(address) is CacheState.WE
    assert engine.dirty_bits.is_dirty(block)
    assert engine._dirty_node[block] == 0


def test_read_sharing_allows_multiple_rs(setup):
    sim, engine = setup
    address = shared_address(engine)
    for node in range(4):
        run_reference(sim, engine, node, address, False)
    for node in range(4):
        assert engine.caches[node].state_of(address) is CacheState.RS
    engine.check_invariants()


def test_upgrade_invalidates_other_sharers(setup):
    sim, engine = setup
    address = shared_address(engine)
    for node in range(4):
        run_reference(sim, engine, node, address, False)
    run_reference(sim, engine, 2, address, True)  # upgrade
    assert engine.caches[2].state_of(address) is CacheState.WE
    for node in (0, 1, 3):
        assert engine.caches[node].state_of(address) is CacheState.INV
    assert engine.stats.upgrade_latency.count == 1
    assert engine.stats.upgrades_with_sharers == 1
    engine.check_invariants()


def test_upgrade_without_sharers_counted(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 0, address, False)
    run_reference(sim, engine, 0, address, True)
    assert engine.stats.upgrades_without_sharers == 1
    assert engine.stats.upgrades_with_sharers == 0


def test_read_of_dirty_block_downgrades_owner(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 1, address, True)  # P1 owns WE
    run_reference(sim, engine, 3, address, False)  # P3 reads
    assert engine.caches[1].state_of(address) is CacheState.RS
    assert engine.caches[3].state_of(address) is CacheState.RS
    block = engine.address_map.block_of(address)
    assert not engine.dirty_bits.is_dirty(block)
    engine.check_invariants()


def test_write_miss_on_dirty_transfers_ownership(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 1, address, True)
    run_reference(sim, engine, 3, address, True)
    block = engine.address_map.block_of(address)
    assert engine.caches[1].state_of(address) is CacheState.INV
    assert engine.caches[3].state_of(address) is CacheState.WE
    assert engine._dirty_node[block] == 3
    engine.check_invariants()


def test_write_miss_invalidates_all_sharers(setup):
    sim, engine = setup
    address = shared_address(engine)
    for node in range(3):
        run_reference(sim, engine, node, address, False)
    run_reference(sim, engine, 3, address, True)
    for node in range(3):
        assert engine.caches[node].state_of(address) is CacheState.INV
    assert engine.caches[3].state_of(address) is CacheState.WE


# ----------------------------------------------------------------------
# Miss classification
# ----------------------------------------------------------------------
def test_local_clean_read_takes_no_probe(setup):
    sim, engine = setup
    node = 2
    address = local_shared_address(engine, node)
    run_reference(sim, engine, node, address, False)
    assert engine.stats.probes_sent == 0
    counts = engine.stats.counts_by_class()
    assert counts[MissClass.LOCAL_CLEAN] == 1


def test_remote_clean_read_probes_once(setup):
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    run_reference(sim, engine, 0, address, False)
    assert engine.stats.probes_sent == 1
    assert engine.stats.broadcast_probes == 1
    assert engine.stats.blocks_sent == 1
    counts = engine.stats.counts_by_class()
    assert counts[MissClass.REMOTE_CLEAN] == 1


def test_dirty_miss_classified_remote_dirty(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 1, address, True)
    run_reference(sim, engine, 3, address, False)
    counts = engine.stats.counts_by_class()
    assert counts[MissClass.REMOTE_DIRTY] == 1


def test_private_miss_classified_private(setup):
    sim, engine = setup
    address = engine.address_map.private_block_address(0, 7)
    run_reference(sim, engine, 0, address, False)
    counts = engine.stats.counts_by_class()
    assert counts[MissClass.PRIVATE] == 1
    assert engine.stats.probes_sent == 0


def test_private_upgrade_is_silent_and_free(setup):
    sim, engine = setup
    address = engine.address_map.private_block_address(0, 7)
    run_reference(sim, engine, 0, address, False)
    latency = run_reference(sim, engine, 0, address, True)
    assert engine.caches[0].state_of(address) is CacheState.WE
    assert latency == 0
    assert engine.stats.upgrade_latency.count == 0
    assert engine.stats.probes_sent == 0


def test_all_snooping_transactions_take_one_traversal(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 0, address, True)
    run_reference(sim, engine, 1, address, False)
    run_reference(sim, engine, 2, address, True)
    row = engine.stats.miss_traversals.as_paper_row()
    assert row["1"] == pytest.approx(100.0)
    assert row["2"] == 0.0


# ----------------------------------------------------------------------
# Latency structure
# ----------------------------------------------------------------------
def test_remote_miss_latency_includes_ring_and_memory(setup):
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    latency = run_reference(sim, engine, 0, address, False)
    ring_ps = engine.topology.total_stages * engine.clock_ps
    memory_ps = engine.config.memory.access_ps
    assert latency >= ring_ps + memory_ps
    # And it is not wildly above the uncontended path.
    assert latency <= ring_ps * 3 + memory_ps + 50_000


def test_uma_property_latency_position_independent(setup):
    """Snooping miss latency must not depend on who the requester is
    relative to the home (the paper's UMA claim)."""
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    latencies = []
    for node in range(4):
        if engine.address_map.home_of(address) == node:
            continue
        sim_n, engine_n = make_engine(Protocol.SNOOPING)
        latencies.append(run_reference(sim_n, engine_n, node, address, False))
    # All requesters see the same uncontended latency (same slot
    # alignment modulo one frame).
    frame_ps = engine.layout.frame_stages * engine.clock_ps
    assert max(latencies) - min(latencies) <= 2 * frame_ps


def test_upgrade_latency_is_traversal_plus_frame(setup):
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    run_reference(sim, engine, 0, address, False)
    latency = run_reference(sim, engine, 0, address, True)
    ring_ps = engine.topology.total_stages * engine.clock_ps
    frame_ps = engine.layout.frame_stages * engine.clock_ps
    assert ring_ps + frame_ps <= latency <= ring_ps + 3 * frame_ps


# ----------------------------------------------------------------------
# Write-backs
# ----------------------------------------------------------------------
def test_we_eviction_writes_back_and_clears_dirty(setup):
    sim, engine = setup
    num_lines = engine.caches[0].num_lines
    addr_a = shared_address(engine, 0)
    addr_b = engine.address_map.shared_block_address(num_lines)  # conflicts
    run_reference(sim, engine, 0, addr_a, True)
    block_a = engine.address_map.block_of(addr_a)
    assert engine.dirty_bits.is_dirty(block_a)
    run_reference(sim, engine, 0, addr_b, False)
    sim.run()  # let the background write-back drain
    assert not engine.dirty_bits.is_dirty(block_a)
    assert engine.caches[0].state_of(addr_a) is CacheState.INV


def test_rs_eviction_is_silent(setup):
    sim, engine = setup
    num_lines = engine.caches[0].num_lines
    addr_a = shared_address(engine, 0)
    addr_b = engine.address_map.shared_block_address(num_lines)
    run_reference(sim, engine, 0, addr_a, False)
    blocks_before = engine.stats.blocks_sent
    run_reference(sim, engine, 0, addr_b, False)
    sim.run()
    # Only the fill for addr_b moved a block; no write-back happened.
    assert engine.stats.writebacks == 0
    assert engine.stats.blocks_sent <= blocks_before + 1


def test_reclaim_from_writeback_buffer(setup):
    """Re-referencing a just-evicted dirty block is served locally."""
    sim, engine = setup
    num_lines = engine.caches[0].num_lines
    addr_a = shared_address(engine, 0)
    addr_b = engine.address_map.shared_block_address(num_lines)
    run_reference(sim, engine, 0, addr_a, True)  # WE
    run_reference(sim, engine, 0, addr_b, False)  # evicts addr_a
    # Immediately touch addr_a again (write-back may still be queued).
    run_reference(sim, engine, 0, addr_b, False)
    run_reference(sim, engine, 0, addr_a, True)
    sim.run()
    assert engine.caches[0].state_of(addr_a) is CacheState.WE
    engine.check_invariants()


def test_sharing_writeback_traffic_counted(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 1, address, True)
    run_reference(sim, engine, 3, address, False)
    sim.run()
    assert engine.stats.sharing_writebacks == 1
