"""Unit tests for the analytical models."""

import pytest

from repro.core.config import Protocol, SystemConfig
from repro.core.metrics import MissClass
from repro.core.results import ModelInputs
from repro.models.base import (
    LatencyBreakdown,
    md1_wait,
    mm1_wait,
    slot_wait,
    solve_time_per_instruction,
)
from repro.models.bus import BusModel
from repro.models.ring_directory import DirectoryRingModel
from repro.models.ring_snooping import SnoopingRingModel


def make_inputs(
    protocol=Protocol.SNOOPING,
    processors=8,
    remote_clean=0.01,
    remote_dirty=0.005,
    two_cycle=0.0,
    dirty_one=0.0,
    upgrades_with=0.002,
    upgrades_without=0.001,
) -> ModelInputs:
    f_miss = {klass: 0.0 for klass in MissClass}
    f_miss[MissClass.PRIVATE] = 0.002
    f_miss[MissClass.LOCAL_CLEAN] = 0.002
    f_miss[MissClass.REMOTE_CLEAN] = remote_clean
    f_miss[MissClass.REMOTE_DIRTY] = remote_dirty
    f_miss[MissClass.DIRTY_ONE_CYCLE] = dirty_one
    f_miss[MissClass.TWO_CYCLE] = two_cycle
    probes = remote_clean + remote_dirty + dirty_one + two_cycle + upgrades_with + upgrades_without
    return ModelInputs(
        benchmark="synthetic",
        num_processors=processors,
        protocol=protocol,
        data_refs_per_instr=0.33,
        f_miss=f_miss,
        f_upgrade_with_sharers=upgrades_with,
        f_upgrade_without_sharers=upgrades_without,
        f_writeback=0.001,
        f_sharing_writeback=0.001,
        f_probes=probes,
        f_broadcast_probes=probes if protocol is Protocol.SNOOPING else upgrades_with,
        f_blocks=remote_clean + remote_dirty + dirty_one + two_cycle + 0.002,
        f_memory_accesses=0.02,
    )


# ----------------------------------------------------------------------
# Queueing primitives
# ----------------------------------------------------------------------
def test_waits_zero_at_idle():
    assert mm1_wait(0.0, 1_000) == 0.0
    assert md1_wait(0.0, 1_000) == 0.0
    assert slot_wait(0.0, 1_000) == pytest.approx(500.0)  # alignment only


def test_waits_increase_with_load():
    for wait in (mm1_wait, md1_wait, slot_wait):
        values = [wait(rho, 1_000) for rho in (0.1, 0.5, 0.9)]
        assert values[0] < values[1] < values[2]


def test_md1_half_of_mm1():
    assert md1_wait(0.5, 1_000) == pytest.approx(mm1_wait(0.5, 1_000) / 2)


def test_waits_finite_at_saturation():
    for wait in (mm1_wait, md1_wait, slot_wait):
        assert wait(1.5, 1_000) < float("inf")


# ----------------------------------------------------------------------
# Fixed point solver
# ----------------------------------------------------------------------
def test_fixed_point_constant_latency():
    def model(time_ps):
        return LatencyBreakdown(
            latencies={"miss": 100_000.0},
            network_utilization=0.1,
            bank_utilization=0.1,
        )

    time_ps, _ = solve_time_per_instruction(
        busy_ps_per_instr=20_000.0,
        event_frequencies={"miss": 0.01},
        model=model,
    )
    assert time_ps == pytest.approx(21_000.0, rel=1e-4)


def test_fixed_point_load_dependent_latency():
    def model(time_ps):
        rho = min(0.99, 1e6 / time_ps)
        return LatencyBreakdown(
            latencies={"miss": 100_000.0 * (1 + rho)},
            network_utilization=rho,
            bank_utilization=0.0,
        )

    time_ps, breakdown = solve_time_per_instruction(
        busy_ps_per_instr=20_000.0,
        event_frequencies={"miss": 0.05},
        model=model,
    )
    # Self-consistency: T = busy + f * L(T).
    assert time_ps == pytest.approx(
        20_000.0 + 0.05 * breakdown.latencies["miss"], rel=1e-3
    )


def test_fixed_point_no_events():
    def model(time_ps):
        return LatencyBreakdown(
            latencies={}, network_utilization=0.0, bank_utilization=0.0
        )

    time_ps, _ = solve_time_per_instruction(
        busy_ps_per_instr=5_000.0, event_frequencies={}, model=model
    )
    assert time_ps == pytest.approx(5_000.0)


# ----------------------------------------------------------------------
# Ring models
# ----------------------------------------------------------------------
def test_snooping_utilization_decreases_with_faster_processor():
    config = SystemConfig(num_processors=8)
    model = SnoopingRingModel(config, make_inputs())
    utilizations = [
        model.solve(cycle).processor_utilization
        for cycle in (20_000, 10_000, 5_000, 1_000)
    ]
    assert all(b < a for a, b in zip(utilizations, utilizations[1:]))


def test_snooping_network_utilization_increases_with_faster_processor():
    config = SystemConfig(num_processors=8)
    model = SnoopingRingModel(config, make_inputs())
    network = [
        model.solve(cycle).network_utilization
        for cycle in (20_000, 10_000, 1_000)
    ]
    assert network[0] < network[1] < network[2]


def test_snooping_latency_floor_matches_structure():
    """At idle, the remote-clean latency is one traversal plus memory
    plus drains and alignment waits -- no more."""
    config = SystemConfig(num_processors=8)
    inputs = make_inputs(remote_clean=1e-9, remote_dirty=0.0,
                         upgrades_with=0.0, upgrades_without=0.0)
    model = SnoopingRingModel(config, inputs)
    breakdown = model.breakdown(1e12)  # effectively idle
    ring_ps = config.ring_topology().total_stages * config.ring.clock_ps
    latency = breakdown.latencies["remote_clean"]
    floor = ring_ps + config.memory.access_ps
    assert floor < latency < floor + 60_000


def test_directory_dirty_slower_than_clean():
    config = SystemConfig(num_processors=8, protocol=Protocol.DIRECTORY)
    model = DirectoryRingModel(
        config, make_inputs(protocol=Protocol.DIRECTORY, dirty_one=0.005)
    )
    breakdown = model.breakdown(100_000.0)
    assert (
        breakdown.latencies["dirty_one_cycle"]
        > breakdown.latencies["remote_clean"]
    )
    assert (
        breakdown.latencies["two_cycle"]
        > breakdown.latencies["dirty_one_cycle"]
    )


def test_directory_upgrade_with_sharers_slower():
    config = SystemConfig(num_processors=8, protocol=Protocol.DIRECTORY)
    model = DirectoryRingModel(
        config, make_inputs(protocol=Protocol.DIRECTORY)
    )
    breakdown = model.breakdown(100_000.0)
    assert (
        breakdown.latencies["upgrade_with"]
        > breakdown.latencies["upgrade_without"]
    )


def test_sweep_produces_requested_points():
    config = SystemConfig(num_processors=8)
    model = SnoopingRingModel(config, make_inputs())
    sweep = model.sweep([1.0, 5.0, 10.0])
    assert sweep.cycles_ns() == [1.0, 5.0, 10.0]
    assert len(sweep.series("processor_utilization")) == 3
    assert sweep.at_cycle(4.9).processor_cycle_ns == 5.0


# ----------------------------------------------------------------------
# Bus model
# ----------------------------------------------------------------------
def test_bus_saturates_under_heavy_load():
    config = SystemConfig(num_processors=32, protocol=Protocol.BUS)
    model = BusModel(config, make_inputs(processors=32, remote_clean=0.03))
    point = model.solve(1_000)
    assert point.network_utilization > 0.9
    assert point.processor_utilization < 0.2


def test_faster_bus_clock_helps():
    from dataclasses import replace

    inputs = make_inputs(processors=16)
    slow_config = SystemConfig(num_processors=16, protocol=Protocol.BUS)
    fast_config = replace(
        slow_config, bus=replace(slow_config.bus, clock_ps=10_000)
    )
    slow = BusModel(slow_config, inputs).solve(5_000)
    fast = BusModel(fast_config, inputs).solve(5_000)
    assert fast.processor_utilization > slow.processor_utilization


def test_bus_latency_floor():
    config = SystemConfig(num_processors=8, protocol=Protocol.BUS)
    model = BusModel(config, make_inputs(processors=8))
    breakdown = model.breakdown(1e12)
    floor = 6 * config.bus.clock_ps + config.memory.access_ps
    assert breakdown.latencies["remote_clean"] == pytest.approx(floor, rel=0.01)


# ----------------------------------------------------------------------
# Matching solver (Table 4 machinery)
# ----------------------------------------------------------------------
def test_matching_bus_clock_is_monotone_in_processor_speed():
    from repro.models.matching import matching_bus_clock_ns

    config = SystemConfig(num_processors=16)
    inputs = make_inputs(processors=16)
    clocks = [
        matching_bus_clock_ns(config, inputs, cycle)
        for cycle in (10_000, 5_000, 2_500)
    ]
    # Faster processors need faster matching buses.
    assert clocks[0] >= clocks[1] >= clocks[2]


def test_matching_bus_reproduces_ring_utilization():
    from dataclasses import replace

    from repro.models.matching import (
        matching_bus_clock_ns,
        ring_target_utilization,
    )

    config = SystemConfig(num_processors=16)
    inputs = make_inputs(processors=16)
    target = ring_target_utilization(config, inputs, 10_000)
    clock_ns = matching_bus_clock_ns(config, inputs, 10_000)
    bus_config = replace(
        config,
        protocol=Protocol.BUS,
        bus=replace(config.bus, clock_ps=round(clock_ns * 1000)),
    )
    achieved = BusModel(bus_config, inputs).solve(10_000).processor_utilization
    assert achieved == pytest.approx(target, abs=0.01)
