"""Graceful degradation when NumPy is unavailable.

``REPRO_NO_NUMPY=1`` makes :func:`repro.models.grid.require_numpy`
raise even with NumPy installed, so the scalar-only environment (the
CI leg installing with ``--no-deps``) can be rehearsed anywhere.  The
contract: every grid entry point raises a clear ImportError, every
scalar path keeps working, and the opt-in layers (sweeps, bench, CLI,
sensitivity) fall back or fail fast instead of crashing mid-run.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro.core.config import Protocol, SystemConfig
from repro.models import grid as grid_engine


@pytest.fixture
def no_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")


def _make_inputs(protocol, processors):
    spec = importlib.util.spec_from_file_location(
        "grid_oracle", pathlib.Path(__file__).parent / "test_grid_models.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module._make_inputs(protocol, processors)


class _FakeResult:
    """Stands in for a SimulationResult where only .inputs is used."""

    def __init__(self, inputs):
        self.inputs = inputs


def test_grid_engine_reports_unavailable(no_numpy):
    assert not grid_engine.grid_available()
    with pytest.raises(ImportError, match="REPRO_NO_NUMPY"):
        grid_engine.require_numpy()


def test_grid_constructors_raise_import_error(no_numpy):
    config = SystemConfig(num_processors=4)
    inputs = _make_inputs(Protocol.SNOOPING, 4)
    with pytest.raises(ImportError):
        grid_engine.ModelGrid.from_points(
            "ring_snooping", [(config, inputs, 5_000)]
        )
    with pytest.raises(ImportError):
        grid_engine.ModelGrid.from_product("ring_snooping", config, inputs)
    with pytest.raises(ImportError):
        grid_engine.snoop_interarrival_grid(32, 32)


def test_sweep_from_result_falls_back_and_fails_fast(no_numpy):
    from repro.core.hybrid import sweep_from_result

    inputs = _make_inputs(Protocol.SNOOPING, 4)
    simulated = _FakeResult(inputs)

    # Explicit opt-in without NumPy: a clear error, not a crash later.
    with pytest.raises(ImportError):
        sweep_from_result(
            simulated, 4, Protocol.SNOOPING, cycles_ns=[10.0], use_grid=True
        )
    # Default and explicit scalar paths keep working.
    for use_grid in (None, False):
        sweep = sweep_from_result(
            simulated,
            4,
            Protocol.SNOOPING,
            cycles_ns=[10.0, 20.0],
            use_grid=use_grid,
        )
        assert len(sweep.points) == 2


def test_lazy_package_exports_resolve_without_numpy(no_numpy):
    import repro.models

    # The package import graph never touches NumPy; the lazy grid
    # re-exports resolve (grid_available is callable anywhere) and
    # unknown names still fail normally.
    assert repro.models.grid_available() is False
    assert repro.models.GRID_STATS is grid_engine.GRID_STATS
    with pytest.raises(AttributeError):
        repro.models.not_a_model


def test_bench_suite_omits_grid_workload(no_numpy):
    from repro.perf import bench

    report = bench.run_suite("models", quick=True)
    names = [workload.name for workload in report.workloads]
    assert "grid.solve" not in names
    assert "sweep.snooping" in names

    # A baseline recorded *with* NumPy still gates cleanly: the grid
    # workload is the one legitimate skip, everything else compares.
    with_grid = bench.BenchReport(
        suite="models", mode="quick", workloads=list(report.workloads)
    )
    with_grid.workloads.append(
        bench.WorkloadResult(
            name="grid.solve",
            wall_s=0.01,
            counters={"grid_evals": 100},
            gate=("grid_evals",),
        )
    )
    assert bench.check_against_baseline(
        report, with_grid.to_jsonable()
    ) == []


def test_cli_grid_command_degrades_with_exit_code(no_numpy, capsys):
    from repro.cli import main

    assert main(["grid", "mp3d"]) == 2
    assert "grid engine unavailable" in capsys.readouterr().err


def test_model_sensitivity_sweep_uses_scalar_path(no_numpy):
    from repro.core.sensitivity import model_sensitivity_sweep

    rows = model_sensitivity_sweep(
        "mp3d",
        4,
        "ring_clock_ps",
        [2_000, 4_000],
        data_refs=600,
    )  # use_grid defaults to grid_available() -> False here
    assert len(rows) == 2
    assert rows[1]["miss latency (ns)"] > rows[0]["miss latency (ns)"]
