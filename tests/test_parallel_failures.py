"""Failure handling in the parallel sweep executor.

A long sweep that dies should say *which point* killed it: without
attribution the failing (benchmark, protocol, processors, seed) tuple
is lost, and with a process pool the naive path also leaves queued
futures running after the caller has given up.  These tests pin the
contract of :class:`repro.core.parallel.SweepPointError`:

* the error names the failing point's index, benchmark, protocol and
  resolved seed, with the worker exception as ``__cause__``;
* both the serial and the pool path raise it;
* a failure cleans up stale ``.tmp-*.json`` droppings in the store.
"""

from __future__ import annotations

import pytest

from repro.core.config import Protocol
from repro.core.parallel import (
    SweepPoint,
    SweepPointError,
    execute_points,
)

REFS = 300

GOOD = SweepPoint("mp3d", 4, Protocol.SNOOPING, REFS)
#: The trace generator raises KeyError for an unknown benchmark, which
#: is a convenient stand-in for any worker-side failure.
BAD = SweepPoint("no-such-benchmark", 4, Protocol.SNOOPING, REFS, seed=41)


def test_serial_failure_names_the_point(temp_store):
    with pytest.raises(SweepPointError) as excinfo:
        execute_points([GOOD, BAD], jobs=1)
    error = excinfo.value
    assert error.index == 1
    assert error.point is BAD
    assert error.__cause__ is not None
    message = str(error)
    assert "no-such-benchmark" in message
    assert "snooping" in message
    assert "seed=41" in message


def test_parallel_failure_names_the_point(temp_store):
    with pytest.raises(SweepPointError) as excinfo:
        execute_points([BAD, GOOD], jobs=2)
    error = excinfo.value
    assert error.index == 0
    assert error.point == BAD
    assert error.__cause__ is not None
    assert "no-such-benchmark" in str(error)
    assert "seed=41" in str(error)


@pytest.mark.parametrize("jobs", [1, 2])
def test_failed_outcome_records_wall_and_worker(temp_store, jobs):
    """A failed point settles with the wall time it actually spent and
    the worker that ran it -- not the fabricated ``0.0`` / ``0`` the
    executor used to report when the failure crossed the pool
    boundary."""
    settled = []

    def progress(done, total, outcome):
        settled.append(outcome)

    with pytest.raises(SweepPointError) as excinfo:
        execute_points([BAD], jobs=jobs, progress=progress)
    (outcome,) = settled
    assert outcome.failed and outcome.result is None
    assert outcome.wall_s > 0.0
    assert outcome.worker == 0  # the only worker observed so far
    assert "no-such-benchmark" in outcome.error
    # The cause chain surfaces the original worker exception, not the
    # internal metadata wrapper it travelled in.
    from repro.core.parallel import _PointFailure

    cause = excinfo.value.__cause__
    assert cause is not None
    assert not isinstance(cause, _PointFailure)
    assert f"{type(cause).__name__}: {cause}" == outcome.error


def test_parallel_failure_cancels_outstanding_points(temp_store):
    # Many queued points behind the failing one: the executor must not
    # drain them all before surfacing the error.  With jobs=2 only a
    # couple can be in flight when BAD fails, so a bounded number of
    # results may land in the store -- but nowhere near all of them.
    points = [BAD] + [
        SweepPoint("mp3d", 4, Protocol.SNOOPING, REFS, seed=s)
        for s in range(20)
    ]
    with pytest.raises(SweepPointError):
        execute_points(points, jobs=2)
    assert temp_store.entry_count() < len(points) - 2


def test_failure_sweeps_stale_tmp_files(temp_store):
    temp_store.results_dir.mkdir(parents=True, exist_ok=True)
    stale = temp_store.results_dir / ".tmp-deadbeef.json"
    stale.write_text("{}")
    with pytest.raises(SweepPointError):
        execute_points([BAD], jobs=1)
    assert not stale.exists()


def test_cleanup_stale_tmp_spares_real_entries(temp_store):
    execute_points([GOOD], jobs=1)
    assert temp_store.entry_count() == 1
    temp_store.results_dir.joinpath(".tmp-1.json").write_text("{}")
    temp_store.results_dir.joinpath(".tmp-2.json").write_text("{}")
    assert temp_store.cleanup_stale_tmp() == 2
    assert temp_store.entry_count() == 1
    assert temp_store.cleanup_stale_tmp() == 0


def test_successful_sweep_leaves_store_config_restored(temp_store, tmp_path):
    from repro.core.store import get_result_store

    execute_points([GOOD], jobs=1, cache_dir=tmp_path)
    assert get_result_store() is temp_store


def test_store_open_sweeps_aged_tmp_files(tmp_path):
    """Opening a store GCs orphans older than the age guard, but never
    touches young temp files that may belong to a live writer."""
    import os

    from repro.core.store import STALE_TMP_AGE_SECONDS, ResultStore

    results = tmp_path / "results"
    results.mkdir(parents=True)
    old = results / ".tmp-old.json"
    young = results / ".tmp-young.json"
    old.write_text("{}")
    young.write_text("{}")
    ancient = old.stat().st_mtime - (STALE_TMP_AGE_SECONDS + 60)
    os.utime(old, (ancient, ancient))

    ResultStore(tmp_path)
    assert not old.exists()
    assert young.exists()

    # A disabled store is inert: it must not mutate the directory.
    (results / ".tmp-old2.json").write_text("{}")
    os.utime(results / ".tmp-old2.json", (ancient, ancient))
    ResultStore(tmp_path, enabled=False)
    assert (results / ".tmp-old2.json").exists()


def test_store_cleanup_cli(tmp_path, capsys):
    import os

    from repro.cli import main

    results = tmp_path / "results"
    results.mkdir(parents=True)
    old = results / ".tmp-a.json"
    young = results / ".tmp-b.json"
    old.write_text("{}")
    young.write_text("{}")
    past = old.stat().st_mtime - 7200
    os.utime(old, (past, past))

    code = main(
        ["store", "cleanup", "--cache-dir", str(tmp_path), "--min-age", "3600"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "removed 1 stale temp file(s)" in out
    assert not old.exists() and young.exists()

    code = main(["store", "cleanup", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "removed 1 stale temp file(s)" in out
    assert not young.exists()

    code = main(["store", "info", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "entries: 0" in out


# ----------------------------------------------------------------------
# The generic task pool behind the checker (map_tasks / TaskError)
# ----------------------------------------------------------------------
def _double(task):
    return task * 2


def _fail_on_three(task):
    if task == 3:
        raise ValueError("three is right out")
    return task


def test_map_tasks_preserves_order_serial_and_parallel():
    from repro.core.parallel import map_tasks

    tasks = list(range(7))
    assert map_tasks(_double, tasks, jobs=1) == [t * 2 for t in tasks]
    assert map_tasks(_double, tasks, jobs=3) == [t * 2 for t in tasks]
    assert map_tasks(_double, [], jobs=3) == []


@pytest.mark.parametrize("jobs", [1, 2])
def test_map_tasks_wraps_failures_with_the_task(jobs):
    from repro.core.parallel import TaskError, map_tasks

    with pytest.raises(TaskError) as excinfo:
        map_tasks(_fail_on_three, [1, 2, 3, 4], jobs=jobs)
    error = excinfo.value
    assert error.index == 2
    assert error.task == 3
    assert error.__cause__ is not None
    assert "three is right out" in str(error.__cause__)


# ----------------------------------------------------------------------
# Blob storage (explorer checkpoints ride on this)
# ----------------------------------------------------------------------
def test_blob_roundtrip_counts_and_persists(tmp_path):
    from repro.core.store import ResultStore

    store = ResultStore(tmp_path)
    assert store.get_blob("explore", "k" * 64) is None
    assert store.blob_misses == 1
    payload = {"visited": {"a": 1}, "frontier": [[[0, 0, "w"]]]}
    store.put_blob("explore", "k" * 64, payload)
    assert store.blob_stores == 1
    assert store.get_blob("explore", "k" * 64) == payload
    assert store.blob_hits == 1
    # A second store handle sees the same bytes (it really persisted).
    assert ResultStore(tmp_path).get_blob("explore", "k" * 64) == payload


def test_blob_api_is_inert_when_disabled(tmp_path):
    from repro.core.store import ResultStore

    store = ResultStore(tmp_path, enabled=False)
    store.put_blob("explore", "key", {"x": 1})
    assert store.get_blob("explore", "key") is None
    assert store.blob_stores == 0


def test_blob_corruption_reads_as_miss(tmp_path):
    from repro.core.store import ResultStore

    store = ResultStore(tmp_path)
    store.put_blob("explore", "abc", {"x": 1})
    (tmp_path / "explore" / "abc.json").write_text("{nope")
    assert store.get_blob("explore", "abc") is None


def test_blob_kind_validation(tmp_path):
    from repro.core.store import ResultStore

    store = ResultStore(tmp_path)
    for bad in ("", "a/b", ".hidden"):
        with pytest.raises(ValueError):
            store.blob_dir(bad)


def test_cleanup_sweeps_blob_directories_too(tmp_path):
    from repro.core.store import ResultStore

    store = ResultStore(tmp_path)
    blobs = store.blob_dir("explore")
    blobs.mkdir(parents=True, exist_ok=True)
    stray = blobs / ".tmp-dead.json"
    stray.write_text("{}")
    removed = store.cleanup_stale_tmp(min_age_seconds=0.0)
    assert removed >= 1 and not stray.exists()
