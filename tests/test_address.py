"""Unit and property tests for the address map."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.address import (
    PAGE_SIZE,
    PRIVATE_REGION_SIZE,
    SHARED_BASE,
    AddressMap,
)


@pytest.fixture
def amap():
    return AddressMap(num_nodes=8, block_size=16, seed=1)


def test_private_addresses_below_shared_base(amap):
    address = amap.private_block_address(3, 100)
    assert address < SHARED_BASE
    assert not amap.is_shared(address)


def test_shared_addresses_in_shared_region(amap):
    address = amap.shared_block_address(5)
    assert address >= SHARED_BASE
    assert amap.is_shared(address)


def test_private_home_is_owner(amap):
    for node in range(8):
        address = amap.private_block_address(node, 42)
        assert amap.home_of(address) == node
        assert amap.is_local(address, node)


def test_private_block_out_of_region_rejected(amap):
    with pytest.raises(ValueError):
        amap.private_block_address(0, PRIVATE_REGION_SIZE)  # way past


def test_private_bad_node_rejected(amap):
    with pytest.raises(ValueError):
        amap.private_block_address(8, 0)


def test_negative_shared_index_rejected(amap):
    with pytest.raises(ValueError):
        amap.shared_block_address(-1)


def test_block_arithmetic(amap):
    address = amap.shared_block_address(10) + 7
    assert amap.block_of(address) == amap.shared_block_address(10) // 16
    assert amap.block_address(address) == amap.shared_block_address(10)


def test_parity_alternates(amap):
    even = amap.shared_block_address(0)
    odd = amap.shared_block_address(1)
    assert amap.parity_of(even) != amap.parity_of(odd)
    # Offsets within the block do not change parity.
    assert amap.parity_of(even + 12) == amap.parity_of(even)


def test_home_is_deterministic():
    a = AddressMap(8, 16, seed=9)
    b = AddressMap(8, 16, seed=9)
    for index in range(0, 5_000, 37):
        address = a.shared_block_address(index)
        assert a.home_of(address) == b.home_of(address)


def test_home_depends_on_seed():
    a = AddressMap(8, 16, seed=1)
    b = AddressMap(8, 16, seed=2)
    addresses = [a.shared_block_address(i * 1_000) for i in range(64)]
    assert any(a.home_of(addr) != b.home_of(addr) for addr in addresses)


def test_home_constant_within_page():
    amap = AddressMap(16, 16, seed=3)
    base = amap.shared_block_address(0)
    page_start = (base // PAGE_SIZE) * PAGE_SIZE
    homes = {
        amap.home_of(page_start + offset)
        for offset in range(0, PAGE_SIZE, 256)
    }
    assert len(homes) == 1


def test_shared_pages_spread_across_nodes():
    amap = AddressMap(8, 16, seed=5)
    homes = {
        amap.home_of(amap.shared_block_address(index * (PAGE_SIZE // 16)))
        for index in range(200)
    }
    assert len(homes) == 8  # every node homes some page


def test_invalid_construction():
    with pytest.raises(ValueError):
        AddressMap(0, 16)
    with pytest.raises(ValueError):
        AddressMap(4, 12)  # not a power of two
    with pytest.raises(ValueError):
        AddressMap(4, 0)


@given(st.integers(0, 10**7))
def test_home_always_valid_node(index):
    amap = AddressMap(8, 16, seed=7)
    address = amap.shared_block_address(index)
    assert 0 <= amap.home_of(address) < 8


@given(st.integers(2, 64), st.integers(0, 100_000))
def test_block_of_consistent_with_block_address(num_nodes, index):
    amap = AddressMap(num_nodes, 16, seed=1)
    address = amap.shared_block_address(index)
    assert amap.block_address(address) == address
    assert amap.block_of(address) * 16 == address
