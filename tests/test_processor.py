"""Unit tests for the trace-driven processor model."""

import pytest

from repro.core.config import ProcessorConfig, Protocol
from repro.memory.address import SHARED_BASE
from repro.proc.processor import TraceProcessor
from repro.traces.records import TraceRecord
from tests.conftest import make_engine


def run_processor(records, protocol=Protocol.SNOOPING, cycle_ps=20_000, node=0):
    sim, engine = make_engine(protocol)
    processor = TraceProcessor(
        sim,
        node,
        engine,
        iter(records),
        ProcessorConfig(cycle_ps=cycle_ps),
    )
    sim.spawn(processor.run(), name="cpu")
    sim.run()
    return sim, engine, processor


def private_record(instr=1, block=0, write=False):
    # Node 0's private region starts at 0.
    return TraceRecord(instr, block * 16, write)


def test_all_hits_time_is_pure_busy():
    # One miss to warm the line, then hits.
    records = [private_record(instr=0)] + [
        private_record(instr=1) for _ in range(9)
    ]
    sim, engine, processor = run_processor(records)
    counters = processor.counters
    assert counters.data_refs == 10
    assert counters.instructions == 9  # instr_before fetches only
    # Busy time: one cycle per instruction fetch.
    assert counters.busy_ps == counters.instructions * 20_000
    assert counters.blocked_ps > 0  # the single cold miss


def test_shared_private_counting():
    records = [
        TraceRecord(0, 0, False),  # private read
        TraceRecord(0, 16, True),  # private write
        TraceRecord(0, SHARED_BASE, False),  # shared read
        TraceRecord(0, SHARED_BASE, True),  # shared write (upgrade)
    ]
    _, _, processor = run_processor(records)
    counters = processor.counters
    assert counters.private_refs == 2
    assert counters.private_writes == 1
    assert counters.shared_refs == 2
    assert counters.shared_writes == 1


def test_shared_fetch_misses_exclude_upgrades():
    records = [
        TraceRecord(0, SHARED_BASE, False),  # read miss (fetch)
        TraceRecord(0, SHARED_BASE, True),  # upgrade (not a fetch miss)
        TraceRecord(0, SHARED_BASE + 16, True),  # write miss (fetch)
    ]
    _, _, processor = run_processor(records)
    assert processor.counters.shared_fetch_misses == 2
    assert processor.counters.shared_miss_rate == pytest.approx(2 / 3)


def test_blocked_time_spans_transactions():
    records = [TraceRecord(0, SHARED_BASE, False)]
    sim, engine, processor = run_processor(records)
    counters = processor.counters
    assert counters.blocked_ps > engine.config.memory.access_ps
    assert counters.elapsed_ps == counters.busy_ps + counters.blocked_ps
    assert counters.finished_at_ps == sim.now


def test_utilization_bounds():
    records = [private_record(instr=3, block=i % 4) for i in range(50)]
    _, _, processor = run_processor(records)
    assert 0.0 < processor.counters.utilization <= 1.0


def test_batching_preserves_totals():
    """Different batch sizes must not change reference accounting or
    total busy time."""
    records = [private_record(instr=1, block=i % 8) for i in range(200)]
    totals = []
    for batch in (1, 16, 1_000):
        sim, engine = make_engine(Protocol.SNOOPING)
        processor = TraceProcessor(
            sim,
            0,
            engine,
            iter(records),
            ProcessorConfig(cycle_ps=20_000, batch_refs=batch),
        )
        sim.spawn(processor.run())
        sim.run()
        totals.append(
            (
                processor.counters.busy_ps,
                processor.counters.data_refs,
                processor.counters.instructions,
            )
        )
    assert totals[0] == totals[1] == totals[2]


def test_faster_processor_finishes_sooner():
    records = [private_record(instr=4, block=i % 4) for i in range(100)]
    _, _, slow = run_processor(records, cycle_ps=20_000)
    _, _, fast = run_processor(records, cycle_ps=5_000)
    assert fast.counters.finished_at_ps < slow.counters.finished_at_ps


def test_mips_property():
    assert ProcessorConfig(cycle_ps=20_000).mips == pytest.approx(50.0)
    assert ProcessorConfig(cycle_ps=1_000).mips == pytest.approx(1_000.0)


def test_empty_trace_finishes_immediately():
    sim, engine, processor = run_processor([])
    assert processor.counters.data_refs == 0
    assert processor.counters.busy_ps == 0
