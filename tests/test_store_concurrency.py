"""Cross-process write races in the persistent result store.

The serving daemon turns the store into a shared cache tier: many
worker processes (and many daemon jobs) publish results concurrently,
including repeatedly for the *same* key when coalescing misses a
window.  These tests pin the hardened contract of
:meth:`repro.core.store.ResultStore.put` / ``put_blob``:

* racing writers of one key never crash -- every rename is atomic and
  last-writer-wins;
* a writer racing ``purge`` (directory churn) recreates the directory
  or drops the write, counted in ``lost_writes``, never raising;
* the surviving entry is always complete, valid JSON.
"""

from __future__ import annotations

import json

from repro.core.config import Protocol, SystemConfig
from repro.core.parallel import map_tasks
from repro.core.store import (
    ResultStore,
    result_from_jsonable,
    result_to_jsonable,
)

REFS = 300
ROUNDS = 6


def _payload(temp_store):
    """One small simulated result, as its jsonable payload (picklable)."""
    from repro.core.experiment import run_simulation

    config = SystemConfig(num_processors=4, protocol=Protocol.SNOOPING)
    result = run_simulation("mp3d", config=config, data_refs=REFS)
    return result_to_jsonable(result)


def _race_put(task):
    """Worker body: hammer one key with puts (and some churn)."""
    store_dir, payload, worker = task
    store = ResultStore(store_dir, enabled=True)
    result = result_from_jsonable(payload)
    config = result.config
    for round_index in range(ROUNDS):
        store.put("mp3d", REFS, config, result)
        store.put_blob("stress", "shared-key", {"worker": worker})
        if worker == 0 and round_index == ROUNDS // 2:
            # One writer churns the directory mid-race: concurrent
            # renames into a just-purged directory must not crash.
            store.purge()
    return store.counters()


def test_racing_writers_of_one_key_never_crash(tmp_path, temp_store):
    payload = _payload(temp_store)
    tasks = [(str(tmp_path), payload, worker) for worker in range(4)]
    counter_sets = map_tasks(_race_put, tasks, jobs=4)

    store = ResultStore(tmp_path, enabled=True)
    # The key may have been purged after the last put, but whatever is
    # on disk must be complete and valid.
    result = store.get("mp3d", REFS, result_from_jsonable(payload).config)
    if result is not None:
        assert result == result_from_jsonable(payload)
    blob = store.get_blob("stress", "shared-key")
    assert blob is not None and blob["worker"] in range(4)
    # Every writer either published or recorded the loss -- no write
    # simply vanished without accounting.
    for counters in counter_sets:
        assert counters["stores"] + counters["lost_writes"] >= 1
        assert counters["blob_stores"] >= 1


def test_put_survives_concurrent_directory_removal(tmp_path, temp_store):
    """A purged/removed results directory is recreated, not crashed on."""
    import shutil

    payload = _payload(temp_store)
    result = result_from_jsonable(payload)
    store = ResultStore(tmp_path / "victim", enabled=True)
    store.put("mp3d", REFS, result.config, result)
    shutil.rmtree(store.results_dir)
    store.put("mp3d", REFS, result.config, result)
    assert store.entry_count() == 1
    assert store.get("mp3d", REFS, result.config) == result


def test_lost_write_is_counted_not_raised(tmp_path):
    """When the rename target is unreachable the write is dropped."""
    store = ResultStore(tmp_path / "gone", enabled=True)
    # Make results_dir uncreatable by occupying its parent with a file.
    store.directory.parent.mkdir(parents=True, exist_ok=True)
    store.directory.touch()
    store.put_blob("stress", "key", {"x": 1})
    assert store.lost_writes == 1
    assert store.counters()["lost_writes"] == 1


def _race_cleanup(task):
    """Worker body: sweep the same store as every other worker."""
    store_dir = task
    # enabled=False skips the open-time sweep so every removal below is
    # attributable to the explicit cleanup call.
    store = ResultStore(store_dir, enabled=False)
    return store.cleanup_stale_tmp()


def test_concurrent_sweeps_count_each_orphan_once(tmp_path):
    """Racing sweepers of one store: no crash, and each orphan is
    counted as removed by exactly one of them."""
    results = tmp_path / "results"
    results.mkdir(parents=True)
    count = 40
    for index in range(count):
        (results / f".tmp-{index}.json").write_text("{}")
    removed = map_tasks(
        _race_cleanup, [str(tmp_path)] * 4, jobs=4
    )
    assert sum(removed) == count
    assert ResultStore(tmp_path, enabled=False).tmp_count() == 0


def test_cleanup_skips_files_a_concurrent_sweeper_already_removed(
    tmp_path, monkeypatch
):
    """Files vanishing between the sweep's listing and its stat/unlink
    (a concurrent sweeper winning the race) are skipped -- not counted,
    not crashed on."""
    import os
    import pathlib

    store = ResultStore(tmp_path, enabled=False)
    results = tmp_path / "results"
    results.mkdir(parents=True)
    gone_at_stat = results / ".tmp-gone-at-stat.json"
    gone_at_unlink = results / ".tmp-gone-at-unlink.json"
    mine = results / ".tmp-mine.json"
    past = None
    for path in (gone_at_stat, gone_at_unlink, mine):
        path.write_text("{}")
        past = path.stat().st_mtime - 7200
        os.utime(path, (past, past))

    real_stat = pathlib.Path.stat
    real_unlink = pathlib.Path.unlink

    def racing_stat(self, **kwargs):
        if self.name == gone_at_stat.name:
            os.remove(self)
            raise FileNotFoundError(2, "swept concurrently", str(self))
        return real_stat(self, **kwargs)

    def racing_unlink(self, **kwargs):
        if self.name == gone_at_unlink.name:
            os.remove(self)
            raise FileNotFoundError(2, "swept concurrently", str(self))
        return real_unlink(self, **kwargs)

    monkeypatch.setattr(pathlib.Path, "stat", racing_stat)
    monkeypatch.setattr(pathlib.Path, "unlink", racing_unlink)
    removed = store.cleanup_stale_tmp(min_age_seconds=3600)
    monkeypatch.undo()

    assert removed == 1  # only .tmp-mine.json is ours to count
    assert not gone_at_stat.exists()
    assert not gone_at_unlink.exists()
    assert not mine.exists()


def test_store_info_shape(tmp_path, temp_store):
    payload = _payload(temp_store)
    result = result_from_jsonable(payload)
    store = ResultStore(tmp_path, enabled=True)
    store.put("mp3d", REFS, result.config, result)
    store.put_blob("explore", "abc", {"ok": True})
    info = store.info()
    assert info["directory"] == str(tmp_path)
    assert info["enabled"] is True
    assert info["entries"] == 1
    assert info["tmp_files"] == 0
    assert info["blobs"] == {"explore": 1}
    json.dumps(info)  # must be plain-JSON serialisable
