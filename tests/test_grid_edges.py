"""Convergence-mask edge cases for the grid engine.

The masked solver's one job beyond speed: a lane that cannot converge
must end as an isolated NaN (counted in ``points_failed``) without
perturbing any other lane -- neighbours still match the scalar oracle
bit for bit, and warm-start chains reseed past a failed column instead
of propagating the poison.
"""

from __future__ import annotations

import importlib.util
import math
import pathlib
from dataclasses import replace

import pytest

np = pytest.importorskip("numpy")

from repro.core.config import Protocol, SystemConfig
from repro.core.metrics import MissClass
from repro.models import grid as grid_engine
from repro.models.base import FixedPointDiverged
from repro.models.ring_snooping import SnoopingRingModel


def _oracle_helpers():
    """Load test_grid_models.py for its shared oracle helpers (the
    tests directory is not an importable package)."""
    spec = importlib.util.spec_from_file_location(
        "grid_oracle", pathlib.Path(__file__).parent / "test_grid_models.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_helpers = _oracle_helpers()
_assert_matches = _helpers._assert_matches
_make_inputs = _helpers._make_inputs

pytestmark = pytest.mark.skipif(
    not grid_engine.grid_available(), reason="grid engine disabled"
)

PROTOCOL = Protocol.SNOOPING


def _poisoned_inputs(value: float):
    inputs = _make_inputs(PROTOCOL, 8)
    f_miss = dict(inputs.f_miss)
    f_miss[MissClass.REMOTE_CLEAN] = value
    return replace(inputs, f_miss=f_miss)


def test_nan_input_fails_fast_without_poisoning_neighbours():
    config = SystemConfig(num_processors=8, protocol=PROTOCOL)
    good = _make_inputs(PROTOCOL, 8)
    points = [
        (config, good, 5_000),
        (config, _poisoned_inputs(float("nan")), 5_000),
        (config, good, 20_000),
    ]
    grid_engine.reset_grid_stats()
    solution = grid_engine.solve_grid(
        grid_engine.ModelGrid.from_points("ring_snooping", points)
    )

    assert list(solution.failed) == [False, True, False]
    assert list(solution.converged) == [True, False, True]
    assert grid_engine.GRID_STATS["points_failed"] == 1
    assert grid_engine.GRID_STATS["points_converged"] == 2

    # Every metric of the failed lane is NaN -- no half-populated rows.
    broken = solution.operating_point(1)
    for name in (
        "processor_utilization",
        "network_utilization",
        "shared_miss_latency_ns",
        "upgrade_latency_ns",
        "time_per_instruction_ps",
    ):
        assert math.isnan(getattr(broken, name)), name

    # The neighbours still match the scalar oracle exactly.
    model = SnoopingRingModel(config, good)
    _assert_matches(solution.operating_point(0), model.solve(5_000))
    _assert_matches(solution.operating_point(2), model.solve(20_000))


def test_divergent_lane_is_isolated_where_scalar_raises():
    """Documented deviation: an un-bracketable lane (here an infinite
    miss frequency, so the residual never goes negative) makes the
    scalar solver raise FixedPointDiverged; the grid marks just that
    lane failed so the other 10^5-1 points still solve."""
    config = SystemConfig(num_processors=8, protocol=PROTOCOL)
    good = _make_inputs(PROTOCOL, 8)
    divergent = _poisoned_inputs(float("inf"))

    with pytest.raises(FixedPointDiverged):
        SnoopingRingModel(config, divergent).solve(5_000)

    solution = grid_engine.solve_grid(
        grid_engine.ModelGrid.from_points(
            "ring_snooping",
            [(config, good, 5_000), (config, divergent, 5_000)],
        )
    )
    assert list(solution.failed) == [False, True]
    assert math.isnan(float(solution.time_per_instruction_ps[1]))
    _assert_matches(
        solution.operating_point(0),
        SnoopingRingModel(config, good).solve(5_000),
    )


def test_poisoned_chain_column_reseeds_later_positions():
    """A failed first column must not drag its warm-start chain down:
    the next column reseeds from the default bracket (exactly a cold
    scalar solve) and the chain then warm-starts normally, while the
    sibling chain is untouched end to end."""
    config = SystemConfig(num_processors=8, protocol=PROTOCOL)
    inputs = _make_inputs(PROTOCOL, 8)
    cycles = [2.0, 5.0, 10.0, 20.0]
    clocks = [2_000, 4_000]

    def build():
        return grid_engine.ModelGrid.from_product(
            "ring_snooping",
            config,
            inputs,
            cycles_ns=cycles,
            parameters={"ring_clock_ps": clocks},
        )

    clean = grid_engine.solve_grid(build())
    assert clean.n_failed == 0

    poisoned_grid = build()
    # Lane 0 = (first clock, first cycle): break its chain head.
    poisoned_grid.arrays["f_remote_clean"][0] = float("nan")
    solution = grid_engine.solve_grid(poisoned_grid)

    n_cycles = len(cycles)
    assert solution.n_failed == 1
    assert bool(solution.failed[0])
    assert math.isnan(float(solution.time_per_instruction_ps[0]))

    # Chain 0, later columns: position 1 solves cold (default seed,
    # like scalar solve() with no guess), positions 2+ warm-start from
    # the recovering chain -- replicate that seeding scalar-side.
    chain_config = replace(
        config, ring=replace(config.ring, clock_ps=clocks[0])
    )
    model = SnoopingRingModel(chain_config, inputs)
    guess = None
    for position in range(1, n_cycles):
        oracle = model.solve(
            round(cycles[position] * 1000), initial_guess_ps=guess
        )
        _assert_matches(
            solution.operating_point(position),
            oracle,
            where=f"chain 0 position {position}",
        )
        guess = oracle.time_per_instruction_ps

    # Chain 1 is bit-identical to the unpoisoned solve.
    lanes = slice(n_cycles, 2 * n_cycles)
    assert np.array_equal(
        solution.time_per_instruction_ps[lanes],
        clean.time_per_instruction_ps[lanes],
    )


def test_failed_lanes_keep_counters_deterministic():
    config = SystemConfig(num_processors=8, protocol=PROTOCOL)
    points = [
        (config, _make_inputs(PROTOCOL, 8), 5_000),
        (config, _poisoned_inputs(float("nan")), 5_000),
        (config, _poisoned_inputs(float("inf")), 5_000),
    ]
    grid = grid_engine.ModelGrid.from_points("ring_snooping", points)

    grid_engine.reset_grid_stats()
    first_solution = grid_engine.solve_grid(grid)
    first = dict(grid_engine.GRID_STATS)
    assert first["points_failed"] == 2

    grid_engine.reset_grid_stats()
    second_solution = grid_engine.solve_grid(grid)
    assert dict(grid_engine.GRID_STATS) == first
    assert np.array_equal(
        first_solution.time_per_instruction_ps,
        second_solution.time_per_instruction_ps,
        equal_nan=True,
    )
