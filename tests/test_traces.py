"""Unit and property tests for the synthetic workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import SHARED_BASE, AddressMap
from repro.traces.benchmarks import (
    BENCHMARKS,
    PAPER_TABLE2,
    available_configurations,
    benchmark_spec,
)
from repro.traces.synthetic import SyntheticTraceGenerator, generate_trace


def make_generator(name="mp3d", processors=8, seed=5):
    spec = benchmark_spec(name, processors)
    amap = AddressMap(processors, 16, seed=seed)
    return spec, SyntheticTraceGenerator(spec, amap, seed=seed)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_all_paper_configurations_present():
    expected = {
        ("mp3d", 8), ("mp3d", 16), ("mp3d", 32),
        ("water", 8), ("water", 16), ("water", 32),
        ("cholesky", 8), ("cholesky", 16), ("cholesky", 32),
        ("fft", 64), ("weather", 64), ("simple", 64),
    }
    assert set(available_configurations()) == expected
    assert set(PAPER_TABLE2) == expected


def test_unknown_benchmark_lists_options():
    with pytest.raises(KeyError) as excinfo:
        benchmark_spec("nonexistent", 8)
    assert "mp3d@8" in str(excinfo.value)


def test_spec_lookup_case_insensitive():
    assert benchmark_spec("MP3D", 16) is BENCHMARKS[("mp3d", 16)]


def test_specs_have_consistent_pool_fractions():
    for spec in BENCHMARKS.values():
        assert 0.0 < spec.shared_fraction < 1.0
        assert spec.migratory_fraction + spec.partitioned_fraction <= 1.0
        assert spec.read_mostly_fraction >= 0.0
        assert spec.instr_per_data > 0.0


def test_spec_scaled_override():
    spec = benchmark_spec("mp3d", 8)
    scaled = spec.scaled(shared_run_mean=3.0)
    assert scaled.shared_run_mean == 3.0
    assert scaled.name == spec.name


# ----------------------------------------------------------------------
# Generator mechanics
# ----------------------------------------------------------------------
def test_stream_length_exact():
    _, generator = make_generator()
    records = list(generator.stream(0, 500))
    assert len(records) == 500


def test_stream_deterministic():
    _, gen_a = make_generator(seed=9)
    _, gen_b = make_generator(seed=9)
    assert list(gen_a.stream(2, 300)) == list(gen_b.stream(2, 300))


def test_streams_differ_across_processors():
    _, generator = make_generator()
    a = list(generator.stream(0, 200))
    b = list(generator.stream(1, 200))
    assert a != b


def test_streams_differ_across_seeds():
    _, gen_a = make_generator(seed=1)
    _, gen_b = make_generator(seed=2)
    assert list(gen_a.stream(0, 200)) != list(gen_b.stream(0, 200))


def test_private_addresses_belong_to_generating_node():
    spec, generator = make_generator()
    amap = generator.address_map
    for record in generator.stream(3, 2_000):
        if record.address < SHARED_BASE:
            assert amap.home_of(record.address) == 3


def test_pool_episode_weights_sum_to_one():
    _, generator = make_generator()
    total = sum(pool.episode_weight for pool in generator.pools)
    assert total == pytest.approx(1.0)


def test_reference_mix_matches_spec():
    """Shared fraction and write fractions land near the Table 2
    targets (reference-weighted episode selection)."""
    spec, generator = make_generator("mp3d", 8)
    records = list(generator.stream(0, 40_000))
    shared = [r for r in records if r.address >= SHARED_BASE]
    private = [r for r in records if r.address < SHARED_BASE]
    shared_fraction = len(shared) / len(records)
    assert abs(shared_fraction - spec.shared_fraction) < 0.05
    private_writes = sum(r.is_write for r in private) / len(private)
    assert abs(private_writes - spec.private_write_fraction) < 0.04
    shared_writes = sum(r.is_write for r in shared) / len(shared)
    assert abs(shared_writes - spec.shared_write_fraction) < 0.07


def test_instruction_ratio_matches_spec():
    spec, generator = make_generator("water", 8)
    records = list(generator.stream(0, 20_000))
    instr = sum(r.instr_before for r in records)
    assert abs(instr / len(records) - spec.instr_per_data) < 0.02


def test_addresses_word_aligned_within_block():
    _, generator = make_generator()
    for record in generator.stream(0, 1_000):
        assert record.address % 4 == 0


def test_generator_rejects_mismatched_map():
    spec = benchmark_spec("mp3d", 8)
    amap = AddressMap(16, 16)
    with pytest.raises(ValueError):
        SyntheticTraceGenerator(spec, amap)


def test_stream_rejects_bad_node():
    _, generator = make_generator()
    with pytest.raises(ValueError):
        next(generator.stream(8, 10))


def test_generate_trace_helper():
    spec = benchmark_spec("mp3d", 8)
    amap = AddressMap(8, 16)
    records = generate_trace(spec, amap, node=0, data_refs=50)
    assert len(records) == 50


def test_migratory_blocks_shared_across_processors():
    """Different processors touch overlapping migratory blocks --
    without this, no dirty misses could ever occur."""
    _, generator = make_generator("mp3d", 8)
    blocks = []
    for node in (0, 1):
        touched = {
            record.address // 16
            for record in generator.stream(node, 5_000)
            if record.address >= SHARED_BASE
        }
        blocks.append(touched)
    assert blocks[0] & blocks[1]


@given(refs=st.integers(1, 400), node=st.integers(0, 7), seed=st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_stream_always_yields_exactly_n_valid_records(refs, node, seed):
    spec = benchmark_spec("cholesky", 8)
    amap = AddressMap(8, 16, seed=seed)
    generator = SyntheticTraceGenerator(spec, amap, seed=seed)
    records = list(generator.stream(node, refs))
    assert len(records) == refs
    for record in records:
        assert record.instr_before >= 0
        assert record.address >= 0
        assert isinstance(record.is_write, bool)
