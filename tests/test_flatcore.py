"""Structural and unit contracts for the flat state-machine core.

The flat dispatch tables in ``repro.ring.flatring`` / ``flatsnooping``
/ ``flatdirectory`` exist to eliminate per-event object churn: no
generator frames, no request objects, no ad-hoc ``Event`` allocation
per kernel wait.  Equivalence with the coroutine engines is pinned
behaviourally by ``tests/test_fastpath_equivalence.py``; this module
pins the *structural* property with an AST lint over every handler
reachable from a dispatch table:

* no ``yield`` / ``yield from`` / ``await`` -- a handler is a plain
  function, never a resumable frame;
* no construction of kernel request objects (``Timeout`` / ``Relay`` /
  ``Event``) and no ``sim.timeout(...)`` calls -- waits go through the
  preallocated ``f_delay`` / ``f_event`` / ``f_relay`` record fields;
* no ``sim.spawn(...)`` of a fresh generator -- background machines
  come from the per-engine free-list pools.

The same lint covers the kernel's inlined dispatch loop itself.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

import pytest

from repro.ring import flatdirectory, flatring, flatsnooping
from repro.sim.flatcore import (
    OP_CONTINUE,
    OP_DONE,
    OP_RELAY,
    OP_TIMEOUT,
    FlatProcess,
)
from repro.sim.kernel import Simulator

# ----------------------------------------------------------------------
# Every handler reachable from any dispatch table, deduplicated.
# ----------------------------------------------------------------------
DISPATCH_TABLES = {
    "flatring.SHARED_HANDLERS": flatring.SHARED_HANDLERS,
    "flatring.INVALIDATE_TABLE": flatring.INVALIDATE_TABLE,
    "flatring.DOWNGRADE_TABLE": flatring.DOWNGRADE_TABLE,
    "flatsnooping.SNOOPING_TABLE": flatsnooping.SNOOPING_TABLE,
    "flatdirectory.DIRECTORY_TABLE": flatdirectory.DIRECTORY_TABLE,
}


def _all_handlers():
    seen = {}
    for table_name, table in DISPATCH_TABLES.items():
        for handler in table:
            key = (handler.__module__, handler.__qualname__)
            seen.setdefault(key, (table_name, handler))
    return [
        pytest.param(handler, id=f"{key[0].rsplit('.', 1)[-1]}.{key[1]}")
        for key, (_, handler) in sorted(seen.items())
    ]


#: Calls that allocate a kernel request object per event.
_FORBIDDEN_CONSTRUCTORS = {"Timeout", "Relay", "Event"}
#: Method calls that allocate (sim.timeout builds a Timeout; sim.spawn
#: builds a Process around a fresh generator frame).
_FORBIDDEN_METHODS = {"timeout", "spawn"}


def _lint_tree(tree: ast.AST, where: str) -> None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            raise AssertionError(
                f"{where}: dispatch code must not contain "
                f"{type(node).__name__} (line {node.lineno})"
            )
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _FORBIDDEN_CONSTRUCTORS
            ):
                raise AssertionError(
                    f"{where}: allocates {func.id}(...) per event "
                    f"(line {node.lineno}); use the preallocated "
                    f"f_delay/f_event/f_relay fields"
                )
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _FORBIDDEN_METHODS
            ):
                raise AssertionError(
                    f"{where}: calls .{func.attr}(...) per event "
                    f"(line {node.lineno}); flat machines must come "
                    f"from the free-list pools"
                )


@pytest.mark.parametrize("handler", _all_handlers())
def test_dispatch_handlers_allocate_nothing_per_event(handler):
    source = textwrap.dedent(inspect.getsource(handler))
    _lint_tree(ast.parse(source), handler.__qualname__)


def test_tables_share_the_common_prefix():
    """Engine tables embed SHARED_HANDLERS verbatim at indices 0..N-1,
    so a machine's generic states (CPU loop, acquire, sends, pools)
    mean the same thing in every engine."""
    shared = flatring.SHARED_HANDLERS
    for name, table in (
        ("SNOOPING_TABLE", flatsnooping.SNOOPING_TABLE),
        ("DIRECTORY_TABLE", flatdirectory.DIRECTORY_TABLE),
    ):
        assert table[: len(shared)] == shared, name
        assert len(table) > len(shared), name


def test_kernel_dispatch_loop_allocates_no_request_objects():
    """The inlined flat branch of Simulator.run() schedules through
    heap tuples only -- it never constructs Timeout/Relay/Event."""
    source = textwrap.dedent(inspect.getsource(Simulator.run))
    _lint_tree(ast.parse(source), "Simulator.run")


# ----------------------------------------------------------------------
# FlatProcess unit contract
# ----------------------------------------------------------------------
def _counter_table():
    def tick(proc, value):
        proc.count += 1
        if proc.count >= 3:
            proc.state = 1
            return OP_CONTINUE
        proc.f_delay = 1_000
        return OP_TIMEOUT

    def finish(proc, value):
        proc.result = proc.count
        return OP_DONE

    return [tick, finish]


class CounterMachine(FlatProcess):
    __slots__ = ("count",)

    def __init__(self, sim, table):
        FlatProcess.__init__(self, sim, table, name="counter")
        self.count = 0


def test_flat_process_runs_on_the_kernel():
    sim = Simulator()
    machine = CounterMachine(sim, _counter_table())
    sim.activate(machine)
    finish = sim.run()
    # Two real sleeps (the third tick chains straight to the finish
    # state via OP_CONTINUE without touching the heap).
    assert finish == 2_000
    assert machine.result == 3
    assert machine.done.fired
    assert machine.done.value == 3


def test_flat_process_reset_reactivates_cleanly():
    sim = Simulator()
    table = _counter_table()
    machine = CounterMachine(sim, table)
    sim.activate(machine)
    sim.run()
    assert machine.done.fired

    machine.reset()
    machine.count = 0
    assert machine.result is None
    sim.activate(machine)
    assert not machine.done.fired  # a fresh completion event
    sim.run()
    assert machine.result == 3
    assert machine.done.fired


def test_relay_record_is_mutated_in_place():
    sim = Simulator()
    machine = CounterMachine(sim, _counter_table())
    record = machine.f_relay
    op = machine.relay(5, 2, 11)
    assert op == OP_RELAY
    assert machine.f_relay is record
    assert (record.first, record.step, record.final) == (5, 2, 11)
