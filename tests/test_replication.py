"""Tests for multi-seed replication."""

import pytest

from repro.core.config import Protocol
from repro.core.replication import MetricSummary, replicate


def test_metric_summary_statistics():
    summary = MetricSummary("x", (1.0, 2.0, 3.0))
    assert summary.mean == pytest.approx(2.0)
    assert summary.std == pytest.approx(1.0)
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0
    assert summary.relative_std == pytest.approx(0.5)


def test_metric_summary_single_value():
    summary = MetricSummary("x", (5.0,))
    assert summary.std == 0.0
    assert summary.relative_std == 0.0


def test_metric_summary_zero_mean():
    summary = MetricSummary("x", (0.0, 0.0))
    assert summary.relative_std == 0.0


def test_replicate_requires_seeds():
    with pytest.raises(ValueError):
        replicate("mp3d", 4, seeds=())


@pytest.fixture(scope="module")
def report():
    return replicate(
        "mp3d", 4, Protocol.SNOOPING, seeds=(1, 2, 3), data_refs=1_200
    )


def test_replicate_runs_all_seeds(report):
    assert report.seeds == (1, 2, 3)
    assert len(report.results) == 3


def test_replicate_metrics_present(report):
    for name in (
        "processor_utilization",
        "network_utilization",
        "shared_miss_latency_ns",
        "upgrade_latency_ns",
        "shared_miss_rate_percent",
    ):
        assert report.summary(name).values


def test_seeds_actually_vary_results(report):
    latencies = report.summary("shared_miss_latency_ns").values
    assert len(set(latencies)) > 1


def test_headline_metrics_are_stable_across_seeds(report):
    """Seed-to-seed spread on utilisation stays small: the benchmark
    assertions elsewhere rely on this."""
    assert report.summary("processor_utilization").relative_std < 0.05
    assert report.summary("shared_miss_latency_ns").relative_std < 0.10


def test_rows_render(report):
    rows = report.rows()
    assert len(rows) == 5
    assert all({"metric", "mean", "std", "min", "max"} <= set(row) for row in rows)
