"""Tests for the register-insertion access model (paper §2/§5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.register_insertion import (
    SCI_FAIRNESS_EFFICIENCY,
    AccessPoint,
    access_comparison,
    crossover_utilization,
    register_insertion_access_ps,
    slotted_access_ps,
)

SLOT_PERIOD = 20_000  # one 10-stage frame at 2 ns
MESSAGE_TIME = 4_000  # a 2-stage probe at 2 ns


def test_register_insertion_zero_at_idle():
    assert register_insertion_access_ps(0.0, MESSAGE_TIME) == 0.0


def test_slotted_pays_alignment_at_idle():
    assert slotted_access_ps(0.0, SLOT_PERIOD) == pytest.approx(
        SLOT_PERIOD / 2
    )


def test_light_load_favours_register_insertion():
    for utilization in (0.0, 0.1, 0.3):
        assert register_insertion_access_ps(
            utilization, MESSAGE_TIME
        ) < slotted_access_ps(utilization, SLOT_PERIOD)


def test_heavy_load_favours_slotted():
    assert register_insertion_access_ps(
        0.95, MESSAGE_TIME
    ) > slotted_access_ps(0.95, SLOT_PERIOD)


def test_crossover_between_extremes():
    crossover = crossover_utilization(SLOT_PERIOD, MESSAGE_TIME)
    assert 0.05 < crossover < 0.95


def test_fairness_efficiency_hurts_register_insertion():
    fair = register_insertion_access_ps(
        0.6, MESSAGE_TIME, fairness_efficiency=1.0
    )
    throttled = register_insertion_access_ps(
        0.6, MESSAGE_TIME, fairness_efficiency=0.7
    )
    assert throttled > fair


def test_fairness_efficiency_validated():
    with pytest.raises(ValueError):
        register_insertion_access_ps(0.5, MESSAGE_TIME, fairness_efficiency=0.0)
    with pytest.raises(ValueError):
        register_insertion_access_ps(0.5, MESSAGE_TIME, fairness_efficiency=1.5)


def test_access_comparison_points_and_winner():
    points = access_comparison(
        SLOT_PERIOD, MESSAGE_TIME, utilizations=[0.0, 0.5, 0.95]
    )
    assert [point.utilization for point in points] == [0.0, 0.5, 0.95]
    assert points[0].winner == "register-insertion"
    assert points[-1].winner == "slotted"


def test_default_sweep_covers_twenty_loads():
    points = access_comparison(SLOT_PERIOD, MESSAGE_TIME)
    assert len(points) == 20


def test_default_efficiency_matches_constant():
    a = register_insertion_access_ps(0.4, MESSAGE_TIME)
    b = register_insertion_access_ps(
        0.4, MESSAGE_TIME, fairness_efficiency=SCI_FAIRNESS_EFFICIENCY
    )
    assert a == b


@given(st.floats(0.0, 0.9), st.floats(0.0, 0.9))
def test_register_insertion_monotone_in_load(lo, hi):
    low, high = sorted((lo, hi))
    assert register_insertion_access_ps(
        low, MESSAGE_TIME
    ) <= register_insertion_access_ps(high, MESSAGE_TIME) + 1e-9
