"""The exhaustive explorer: clean protocols pass, seeded bugs fail.

Mutation testing is the checker's own acceptance test: we copy an
engine, inject a classic coherence bug (a dropped invalidation -- the
canonical lost-coherence failure in snoopy protocols), and require the
explorer to find it with a short, minimal, replayable counterexample.
A checker that passes clean protocols but cannot find a seeded bug is
vacuous.
"""

from __future__ import annotations

import json

import pytest

from repro.check import EngineHarness, InvariantViolation, explore
from repro.check.explorer import COUNTEREXAMPLE_SCHEMA, step_alphabet
from repro.check.state import Ref, StepSpec
from repro.ring.directory import DirectoryRingSystem
from repro.ring.snooping import SnoopingRingSystem

PROTOCOLS = ("snooping", "directory", "linkedlist")


# ----------------------------------------------------------------------
# Clean protocols: exhaustive pass at the acceptance configuration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_explore_two_nodes_one_line_is_clean_and_exhaustive(protocol):
    raw = explore(protocol, nodes=2, lines=1, symmetry="none")
    assert raw.ok, raw.summary()
    assert raw.complete, "2n/1l must be exhausted, not truncated"
    assert raw.states >= 5
    assert raw.steps_applied >= raw.states
    assert raw.group_size == 1
    reduced = explore(protocol, nodes=2, lines=1)
    assert reduced.ok and reduced.complete
    assert reduced.symmetry == "full" and reduced.group_size == 2
    # The reduction only merges states, never invents or loses them.
    assert 1 <= reduced.states <= raw.states


def test_explore_bus_is_clean():
    report = explore("bus", nodes=2, lines=1)
    assert report.ok and report.complete, report.summary()


def test_explore_without_races_is_clean():
    report = explore("snooping", nodes=2, lines=1, races=False)
    assert report.ok and report.complete, report.summary()
    assert report.alphabet_size == 4  # 2 nodes x 1 line x {R, W}


def test_step_alphabet_shape():
    singles = [s for s in step_alphabet(2, 1) if not s.is_race]
    races = [s for s in step_alphabet(2, 1) if s.is_race]
    assert len(singles) == 4
    # Races pair refs at distinct nodes only.
    assert len(races) == 4
    assert all(
        step.refs[0].node != step.refs[1].node for step in races
    )


def test_explore_rejects_unknown_protocol():
    with pytest.raises(ValueError):
        explore("token-ring", nodes=2, lines=1)


# ----------------------------------------------------------------------
# Mutants
# ----------------------------------------------------------------------
class DroppedInvalidationSnooping(SnoopingRingSystem):
    """Bug: the write probe's invalidation snoop is silently lost."""

    def schedule_invalidate(self, node, address, at_cycle):
        pass


class DroppedInvalidationDirectory(DirectoryRingSystem):
    """Bug: the home multicasts but sharers never invalidate."""

    def schedule_invalidate(self, node, address, at_cycle):
        pass


def mutant_harness(engine_type):
    """An EngineHarness whose engine is replaced by a mutant copy.

    The mutant adopts the original engine's entire state (caches,
    schedulers, directories), so only the overridden method differs.
    """

    class MutantHarness(EngineHarness):
        def __init__(self, protocol, nodes, lines):
            super().__init__(protocol, nodes, lines)
            mutant = object.__new__(engine_type)
            mutant.__dict__ = self.engine.__dict__
            self.engine = mutant

    return MutantHarness


def test_explorer_catches_dropped_invalidation_in_snooping():
    report = explore(
        "snooping",
        nodes=2,
        lines=1,
        harness_factory=mutant_harness(DroppedInvalidationSnooping),
    )
    assert not report.ok, "seeded bug missed"
    counterexample = report.counterexample
    assert counterexample.depth <= 20
    assert counterexample.kind in {"swmr", "freshness", "agreement"}
    # BFS minimality: some step involves a write (the bug needs one).
    assert any(
        ref.is_write
        for step in counterexample.script
        for ref in step.refs
    )


def test_explorer_catches_dropped_invalidation_in_directory():
    report = explore(
        "directory",
        nodes=2,
        lines=1,
        harness_factory=mutant_harness(DroppedInvalidationDirectory),
    )
    assert not report.ok, "seeded bug missed"
    assert report.counterexample.depth <= 20


def test_sequential_steps_alone_catch_the_snooping_mutant():
    # Even without race steps the bug surfaces: W(a) then W(b) leaves
    # a's stale copy alive, and the next reference exposes it.
    report = explore(
        "snooping",
        nodes=2,
        lines=1,
        races=False,
        harness_factory=mutant_harness(DroppedInvalidationSnooping),
    )
    assert not report.ok
    assert report.counterexample.depth <= 20


# ----------------------------------------------------------------------
# Counterexamples: replay and golden format
# ----------------------------------------------------------------------
def failing_report():
    report = explore(
        "snooping",
        nodes=2,
        lines=1,
        harness_factory=mutant_harness(DroppedInvalidationSnooping),
    )
    assert not report.ok
    return report


def test_counterexample_replays_deterministically():
    counterexample = failing_report().counterexample
    # On the mutant, the script reproduces the violation every time.
    mutant = mutant_harness(DroppedInvalidationSnooping)
    for _ in range(2):
        harness = mutant(
            counterexample.protocol,
            counterexample.nodes,
            counterexample.lines,
        )
        with pytest.raises(InvariantViolation):
            for step in counterexample.script:
                harness.apply(step)
            harness.check(strict=True)


def test_counterexample_script_passes_on_the_clean_engine():
    counterexample = failing_report().counterexample
    harness = counterexample.replay()  # clean EngineHarness
    harness.check(strict=True)  # the bug is in the mutant, not here


def test_counterexample_golden_format(tmp_path):
    counterexample = failing_report().counterexample
    payload = counterexample.as_dict()
    assert payload["schema"] == COUNTEREXAMPLE_SCHEMA
    assert set(payload) == {
        "schema",
        "protocol",
        "nodes",
        "lines",
        "violation",
        "depth",
        "script",
    }
    assert payload["protocol"] == "snooping"
    assert payload["nodes"] == 2 and payload["lines"] == 1
    assert set(payload["violation"]) == {"kind", "message"}
    assert payload["depth"] == len(payload["script"])
    for index, step in enumerate(payload["script"]):
        assert set(step) == {"step", "label", "refs"}
        assert step["step"] == index
        for ref in step["refs"]:
            assert set(ref) == {"node", "line", "op"}
            assert ref["op"] in {"read", "write"}

    path = tmp_path / "counterexample.json"
    counterexample.write_json(str(path))
    assert json.loads(path.read_text()) == payload
    # Serialisation is stable: a second write is byte-identical.
    first = path.read_text()
    counterexample.write_json(str(path))
    assert path.read_text() == first


def test_counterexample_describe_mentions_the_violation():
    counterexample = failing_report().counterexample
    text = counterexample.describe()
    assert counterexample.kind in text
    assert "snooping" in text


# ----------------------------------------------------------------------
# Symmetry reduction and its oracle
# ----------------------------------------------------------------------
def test_symmetry_reduction_beats_four_x_at_three_nodes_two_lines():
    raw = explore("snooping", nodes=3, lines=2, symmetry="none")
    reduced = explore("snooping", nodes=3, lines=2, symmetry="full")
    assert raw.ok and raw.complete and reduced.ok and reduced.complete
    assert reduced.states * 4 <= raw.states, (
        f"reduction only {raw.states}/{reduced.states}x"
    )
    # Orbit counting sanity: the raw space is at most |G| copies of
    # the reduced one.
    assert raw.states <= reduced.states * reduced.group_size


def test_reduced_search_agrees_with_the_raw_oracle_on_mutants():
    factory = mutant_harness(DroppedInvalidationSnooping)
    raw = explore("snooping", 2, 1, symmetry="none", harness_factory=factory)
    reduced = explore(
        "snooping", 2, 1, symmetry="full", harness_factory=factory
    )
    assert not raw.ok and not reduced.ok
    assert raw.counterexample.kind == reduced.counterexample.kind
    # Symmetry never changes the step order at a given depth, so the
    # minimal counterexample is literally the same script.
    assert raw.counterexample.script == reduced.counterexample.script


def test_hierarchical_protocol_is_clean_and_exhaustive():
    report = explore("hierarchical", nodes=4, lines=1)
    assert report.ok and report.complete, report.summary()
    # Cluster-respecting group: (2! x 2! x 2!) node perms, 1 line perm.
    assert report.group_size == 8


def test_explore_rejects_unknown_symmetry():
    with pytest.raises(ValueError):
        explore("snooping", nodes=2, lines=1, symmetry="rotational")


# ----------------------------------------------------------------------
# Parallel frontier expansion: bit-identical to serial
# ----------------------------------------------------------------------
class ParallelMutantHarness(EngineHarness):
    """Module-level (hence picklable) snooping mutant for jobs > 1."""

    def __init__(self, protocol, nodes, lines):
        super().__init__(protocol, nodes, lines)
        mutant = object.__new__(DroppedInvalidationSnooping)
        mutant.__dict__ = self.engine.__dict__
        self.engine = mutant


def test_parallel_exploration_is_bit_identical_to_serial():
    serial = explore("snooping", nodes=3, lines=2, jobs=1)
    parallel = explore("snooping", nodes=3, lines=2, jobs=2)
    assert serial.ok and serial.complete
    assert parallel.ok and parallel.complete
    assert serial.visited_fingerprints == parallel.visited_fingerprints
    assert serial.counters() == parallel.counters()


def test_parallel_exploration_finds_the_same_counterexample():
    serial = explore(
        "snooping", 2, 1, jobs=1, harness_factory=ParallelMutantHarness
    )
    parallel = explore(
        "snooping", 2, 1, jobs=2, harness_factory=ParallelMutantHarness
    )
    assert not serial.ok and not parallel.ok
    assert serial.counterexample.script == parallel.counterexample.script
    assert serial.counterexample.kind == parallel.counterexample.kind
    assert serial.counters() == parallel.counters()


def test_clone_expansion_matches_fresh_replay():
    """One-step clones land exactly where full script replay lands."""
    script = (
        StepSpec((Ref(0, 0, True),)),
        StepSpec((Ref(1, 0, False),)),
        StepSpec((Ref(1, 0, True),)),
    )
    cloned = EngineHarness("directory", 2, 1)
    for step in script:
        cloned = cloned.clone()
        cloned.apply(step)
    replayed = EngineHarness.replay("directory", 2, 1, script)
    assert cloned.snapshot() == replayed.snapshot()


def test_clone_refuses_mid_transaction_state():
    harness = EngineHarness("snooping", 2, 1)
    harness.sim.spawn(iter(()), name="pending")
    with pytest.raises(RuntimeError):
        harness.clone()


# ----------------------------------------------------------------------
# Outcomes: exhaustive vs truncated, and store-backed resume
# ----------------------------------------------------------------------
def test_truncated_run_reports_itself_as_such():
    report = explore("snooping", nodes=2, lines=1, max_depth=1)
    assert report.ok and not report.complete
    assert report.outcome == "truncated"
    assert report.truncated_by == ["max_depth"]
    assert "NOT an exhaustiveness proof" in report.summary()

    capped = explore("snooping", nodes=2, lines=1, max_states=2)
    assert capped.ok and not capped.complete
    assert "max_states" in capped.truncated_by


def test_exhaustive_run_reports_itself_as_such():
    report = explore("snooping", nodes=2, lines=1)
    assert report.complete and report.outcome == "exhaustive"
    assert "EXHAUSTIVE" in report.summary()
    failing = failing_report()
    assert failing.outcome == "violation"


def fresh_store(tmp_path):
    from repro.core.store import ResultStore

    return ResultStore(tmp_path / "store")


def test_resumed_exploration_matches_an_uninterrupted_run(tmp_path):
    store = fresh_store(tmp_path)
    first = explore("snooping", nodes=2, lines=1, max_depth=1, store=store)
    assert not first.complete and store.blob_stores > 0
    resumed = explore("snooping", nodes=2, lines=1, store=store)
    assert resumed.resumed and resumed.resumed_states == first.states
    assert resumed.complete
    oneshot = explore("snooping", nodes=2, lines=1)
    assert resumed.visited_fingerprints == oneshot.visited_fingerprints
    assert resumed.counters() == oneshot.counters()


def test_completed_checkpoint_short_circuits(tmp_path):
    store = fresh_store(tmp_path)
    first = explore("snooping", nodes=2, lines=1, store=store)
    assert first.complete and not first.resumed
    cached = explore("snooping", nodes=2, lines=1, store=store)
    assert cached.complete and cached.resumed
    assert cached.states_expanded == first.states_expanded
    assert cached.visited_fingerprints == first.visited_fingerprints
    # The rerun expanded nothing: it answered from the checkpoint.
    assert store.blob_hits >= 1


def test_checkpoints_do_not_leak_across_setups(tmp_path):
    store = fresh_store(tmp_path)
    explore("snooping", nodes=2, lines=1, store=store)
    other = explore("directory", nodes=2, lines=1, store=store)
    assert not other.resumed
    mutant = explore(
        "snooping",
        nodes=2,
        lines=1,
        store=store,
        harness_factory=mutant_harness(DroppedInvalidationSnooping),
    )
    # The mutant must not reuse the clean engine's proof...
    assert not mutant.resumed and not mutant.ok
    # ...and a violation run must never checkpoint as explored.
    clean = explore("snooping", nodes=2, lines=1, store=store)
    assert clean.resumed and clean.ok


def test_resume_can_be_disabled(tmp_path):
    store = fresh_store(tmp_path)
    explore("snooping", nodes=2, lines=1, store=store)
    rerun = explore("snooping", nodes=2, lines=1, store=store, resume=False)
    assert not rerun.resumed and rerun.complete


# ----------------------------------------------------------------------
# Step/Ref value semantics used by the visited set
# ----------------------------------------------------------------------
def test_refs_and_steps_are_hashable_values():
    a = Ref(0, 0, True)
    assert a == Ref(0, 0, True)
    assert len({a, Ref(0, 0, True)}) == 1
    step = StepSpec((a, Ref(1, 0, False)))
    assert step.is_race
    assert step == StepSpec((a, Ref(1, 0, False)))


def test_step_spec_rejects_empty_and_oversized():
    with pytest.raises(ValueError):
        StepSpec(())
    with pytest.raises(ValueError):
        StepSpec((Ref(0, 0, False),) * 3)
