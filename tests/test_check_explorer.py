"""The exhaustive explorer: clean protocols pass, seeded bugs fail.

Mutation testing is the checker's own acceptance test: we copy an
engine, inject a classic coherence bug (a dropped invalidation -- the
canonical lost-coherence failure in snoopy protocols), and require the
explorer to find it with a short, minimal, replayable counterexample.
A checker that passes clean protocols but cannot find a seeded bug is
vacuous.
"""

from __future__ import annotations

import json

import pytest

from repro.check import EngineHarness, InvariantViolation, explore
from repro.check.explorer import COUNTEREXAMPLE_SCHEMA, step_alphabet
from repro.check.state import Ref, StepSpec
from repro.ring.directory import DirectoryRingSystem
from repro.ring.snooping import SnoopingRingSystem

PROTOCOLS = ("snooping", "directory", "linkedlist")


# ----------------------------------------------------------------------
# Clean protocols: exhaustive pass at the acceptance configuration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_explore_two_nodes_one_line_is_clean_and_exhaustive(protocol):
    report = explore(protocol, nodes=2, lines=1)
    assert report.ok, report.summary()
    assert report.complete, "2n/1l must be exhausted, not truncated"
    assert report.states >= 5
    assert report.steps_applied >= report.states


def test_explore_bus_is_clean():
    report = explore("bus", nodes=2, lines=1)
    assert report.ok and report.complete, report.summary()


def test_explore_without_races_is_clean():
    report = explore("snooping", nodes=2, lines=1, races=False)
    assert report.ok and report.complete, report.summary()
    assert report.alphabet_size == 4  # 2 nodes x 1 line x {R, W}


def test_step_alphabet_shape():
    singles = [s for s in step_alphabet(2, 1) if not s.is_race]
    races = [s for s in step_alphabet(2, 1) if s.is_race]
    assert len(singles) == 4
    # Races pair refs at distinct nodes only.
    assert len(races) == 4
    assert all(
        step.refs[0].node != step.refs[1].node for step in races
    )


def test_explore_rejects_unknown_protocol():
    with pytest.raises(ValueError):
        explore("token-ring", nodes=2, lines=1)


# ----------------------------------------------------------------------
# Mutants
# ----------------------------------------------------------------------
class DroppedInvalidationSnooping(SnoopingRingSystem):
    """Bug: the write probe's invalidation snoop is silently lost."""

    def schedule_invalidate(self, node, address, at_cycle):
        pass


class DroppedInvalidationDirectory(DirectoryRingSystem):
    """Bug: the home multicasts but sharers never invalidate."""

    def schedule_invalidate(self, node, address, at_cycle):
        pass


def mutant_harness(engine_type):
    """An EngineHarness whose engine is replaced by a mutant copy.

    The mutant adopts the original engine's entire state (caches,
    schedulers, directories), so only the overridden method differs.
    """

    class MutantHarness(EngineHarness):
        def __init__(self, protocol, nodes, lines):
            super().__init__(protocol, nodes, lines)
            mutant = object.__new__(engine_type)
            mutant.__dict__ = self.engine.__dict__
            self.engine = mutant

    return MutantHarness


def test_explorer_catches_dropped_invalidation_in_snooping():
    report = explore(
        "snooping",
        nodes=2,
        lines=1,
        harness_factory=mutant_harness(DroppedInvalidationSnooping),
    )
    assert not report.ok, "seeded bug missed"
    counterexample = report.counterexample
    assert counterexample.depth <= 20
    assert counterexample.kind in {"swmr", "freshness", "agreement"}
    # BFS minimality: some step involves a write (the bug needs one).
    assert any(
        ref.is_write
        for step in counterexample.script
        for ref in step.refs
    )


def test_explorer_catches_dropped_invalidation_in_directory():
    report = explore(
        "directory",
        nodes=2,
        lines=1,
        harness_factory=mutant_harness(DroppedInvalidationDirectory),
    )
    assert not report.ok, "seeded bug missed"
    assert report.counterexample.depth <= 20


def test_sequential_steps_alone_catch_the_snooping_mutant():
    # Even without race steps the bug surfaces: W(a) then W(b) leaves
    # a's stale copy alive, and the next reference exposes it.
    report = explore(
        "snooping",
        nodes=2,
        lines=1,
        races=False,
        harness_factory=mutant_harness(DroppedInvalidationSnooping),
    )
    assert not report.ok
    assert report.counterexample.depth <= 20


# ----------------------------------------------------------------------
# Counterexamples: replay and golden format
# ----------------------------------------------------------------------
def failing_report():
    report = explore(
        "snooping",
        nodes=2,
        lines=1,
        harness_factory=mutant_harness(DroppedInvalidationSnooping),
    )
    assert not report.ok
    return report


def test_counterexample_replays_deterministically():
    counterexample = failing_report().counterexample
    # On the mutant, the script reproduces the violation every time.
    mutant = mutant_harness(DroppedInvalidationSnooping)
    for _ in range(2):
        harness = mutant(
            counterexample.protocol,
            counterexample.nodes,
            counterexample.lines,
        )
        with pytest.raises(InvariantViolation):
            for step in counterexample.script:
                harness.apply(step)
            harness.check(strict=True)


def test_counterexample_script_passes_on_the_clean_engine():
    counterexample = failing_report().counterexample
    harness = counterexample.replay()  # clean EngineHarness
    harness.check(strict=True)  # the bug is in the mutant, not here


def test_counterexample_golden_format(tmp_path):
    counterexample = failing_report().counterexample
    payload = counterexample.as_dict()
    assert payload["schema"] == COUNTEREXAMPLE_SCHEMA
    assert set(payload) == {
        "schema",
        "protocol",
        "nodes",
        "lines",
        "violation",
        "depth",
        "script",
    }
    assert payload["protocol"] == "snooping"
    assert payload["nodes"] == 2 and payload["lines"] == 1
    assert set(payload["violation"]) == {"kind", "message"}
    assert payload["depth"] == len(payload["script"])
    for index, step in enumerate(payload["script"]):
        assert set(step) == {"step", "label", "refs"}
        assert step["step"] == index
        for ref in step["refs"]:
            assert set(ref) == {"node", "line", "op"}
            assert ref["op"] in {"read", "write"}

    path = tmp_path / "counterexample.json"
    counterexample.write_json(str(path))
    assert json.loads(path.read_text()) == payload
    # Serialisation is stable: a second write is byte-identical.
    first = path.read_text()
    counterexample.write_json(str(path))
    assert path.read_text() == first


def test_counterexample_describe_mentions_the_violation():
    counterexample = failing_report().counterexample
    text = counterexample.describe()
    assert counterexample.kind in text
    assert "snooping" in text


# ----------------------------------------------------------------------
# Step/Ref value semantics used by the visited set
# ----------------------------------------------------------------------
def test_refs_and_steps_are_hashable_values():
    a = Ref(0, 0, True)
    assert a == Ref(0, 0, True)
    assert len({a, Ref(0, 0, True)}) == 1
    step = StepSpec((a, Ref(1, 0, False)))
    assert step.is_race
    assert step == StepSpec((a, Ref(1, 0, False)))


def test_step_spec_rejects_empty_and_oversized():
    with pytest.raises(ValueError):
        StepSpec(())
    with pytest.raises(ValueError):
        StepSpec((Ref(0, 0, False),) * 3)
