"""Unit tests for the FIFO-fair reader-writer lock."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.queues import ReadWriteLock


def test_reader_immediate_grant(sim):
    lock = ReadWriteLock(sim)
    log = []

    def body():
        yield lock.acquire(exclusive=False)
        log.append(sim.now)
        lock.release()

    sim.spawn(body())
    sim.run()
    assert log == [0]
    assert not lock.held


def test_writer_immediate_grant(sim):
    lock = ReadWriteLock(sim)
    log = []

    def body():
        yield lock.acquire(exclusive=True)
        log.append(sim.now)
        lock.release()

    sim.spawn(body())
    sim.run()
    assert log == [0]
    assert not lock.held


def test_readers_overlap(sim):
    lock = ReadWriteLock(sim)
    log = []

    def reader(tag):
        yield lock.acquire(exclusive=False)
        log.append((tag, "in", sim.now))
        yield sim.timeout(1_000)
        log.append((tag, "out", sim.now))
        lock.release()

    sim.spawn(reader("a"))
    sim.spawn(reader("b"))
    sim.run()
    # Both enter at time 0: fully concurrent.
    assert ("a", "in", 0) in log and ("b", "in", 0) in log


def test_writers_serialize(sim):
    lock = ReadWriteLock(sim)
    log = []

    def writer(tag):
        yield lock.acquire(exclusive=True)
        log.append((tag, sim.now))
        yield sim.timeout(1_000)
        lock.release()

    sim.spawn(writer("a"))
    sim.spawn(writer("b"))
    sim.run()
    assert log == [("a", 0), ("b", 1_000)]


def test_writer_excludes_readers(sim):
    lock = ReadWriteLock(sim)
    log = []

    def writer():
        yield lock.acquire(exclusive=True)
        yield sim.timeout(1_000)
        lock.release()

    def reader():
        yield sim.timeout(10)
        yield lock.acquire(exclusive=False)
        log.append(sim.now)
        lock.release()

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert log == [1_000]


def test_writer_waits_for_all_readers(sim):
    lock = ReadWriteLock(sim)
    log = []

    def reader(hold):
        yield lock.acquire(exclusive=False)
        yield sim.timeout(hold)
        lock.release()

    def writer():
        yield sim.timeout(10)
        yield lock.acquire(exclusive=True)
        log.append(sim.now)
        lock.release()

    sim.spawn(reader(500))
    sim.spawn(reader(2_000))
    sim.spawn(writer())
    sim.run()
    assert log == [2_000]


def test_fifo_fairness_writer_blocks_later_readers(sim):
    """A queued writer must not be starved by a stream of readers."""
    lock = ReadWriteLock(sim)
    order = []

    def first_reader():
        yield lock.acquire(exclusive=False)
        yield sim.timeout(1_000)
        order.append(("r1-done", sim.now))
        lock.release()

    def writer():
        yield sim.timeout(10)
        yield lock.acquire(exclusive=True)
        order.append(("w", sim.now))
        yield sim.timeout(1_000)
        lock.release()

    def late_reader():
        yield sim.timeout(20)  # arrives after the writer queued
        yield lock.acquire(exclusive=False)
        order.append(("r2", sim.now))
        lock.release()

    sim.spawn(first_reader())
    sim.spawn(writer())
    sim.spawn(late_reader())
    sim.run()
    assert order == [("r1-done", 1_000), ("w", 1_000), ("r2", 2_000)]


def test_reader_batch_granted_together(sim):
    lock = ReadWriteLock(sim)
    entered = []

    def writer():
        yield lock.acquire(exclusive=True)
        yield sim.timeout(500)
        lock.release()

    def reader(tag):
        yield sim.timeout(10)
        yield lock.acquire(exclusive=False)
        entered.append((tag, sim.now))
        lock.release()

    sim.spawn(writer())
    for tag in range(3):
        sim.spawn(reader(tag))
    sim.run()
    assert [when for _, when in entered] == [500, 500, 500]


def test_release_idle_raises(sim):
    lock = ReadWriteLock(sim)
    with pytest.raises(SimulationError):
        lock.release()


def test_queue_length(sim):
    lock = ReadWriteLock(sim)
    observed = []

    def holder():
        yield lock.acquire(exclusive=True)
        yield sim.timeout(100)
        observed.append(lock.queue_length)
        lock.release()

    def waiter():
        yield lock.acquire(exclusive=False)
        lock.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert observed == [1]


def test_held_property(sim):
    lock = ReadWriteLock(sim)
    states = []

    def body():
        yield lock.acquire(exclusive=False)
        states.append(lock.held)
        lock.release()
        states.append(lock.held)

    sim.spawn(body())
    sim.run()
    assert states == [True, False]


def test_interleaved_modes_preserve_order(sim):
    """R W R W arrival order is honoured exactly."""
    lock = ReadWriteLock(sim)
    order = []

    def user(tag, exclusive, arrive):
        yield sim.timeout(arrive)
        yield lock.acquire(exclusive=exclusive)
        order.append(tag)
        yield sim.timeout(100)
        lock.release()

    sim.spawn(user("r1", False, 0))
    sim.spawn(user("w1", True, 1))
    sim.spawn(user("r2", False, 2))
    sim.spawn(user("w2", True, 3))
    sim.run()
    assert order == ["r1", "w1", "r2", "w2"]
