"""Bit-identity of the scheduler/kernel fast path, across all engines.

The acquire fast path (relay wakes, arrival-base memoisation) and the
lazy-cancellation kernel must be pure optimisations: for every
protocol and seed, the ``SimulationResult`` -- statistics, latencies,
telemetry histograms, everything that serialises -- must be
bit-identical across

* the serial fast path (the default),
* the serial reference path (``REPRO_NO_FASTPATH=1``, per-arrival
  polling kept verbatim in the scheduler for bisection),
* a multi-process ``execute_points`` run, and
* a cache replay from the persistent store.

The env-var toggle is the bisection tool: any future divergence can be
attributed to the fast path (or not) by flipping it.
"""

from __future__ import annotations

import pytest

from repro.core.config import Protocol
from repro.core.experiment import (
    clear_simulation_cache,
    last_kernel_counters,
    run_simulation,
)
from repro.core.parallel import SweepPoint, execute_points
from repro.core.store import result_to_jsonable
from repro.obs import Tracer
from repro.ring.scheduler import fastpath_enabled
from repro.sim.flatcore import flatcore_enabled

REFS = 300

#: Every protocol engine, plus a reseeded variant and a larger ring
#: with real slot contention (where the fast path actually engages).
POINTS = [
    SweepPoint("mp3d", 4, Protocol.SNOOPING, REFS),
    SweepPoint("mp3d", 4, Protocol.DIRECTORY, REFS),
    SweepPoint("mp3d", 4, Protocol.LINKED_LIST, REFS),
    SweepPoint("mp3d", 4, Protocol.BUS, REFS),
    SweepPoint("mp3d", 4, Protocol.HIERARCHICAL, REFS),
    SweepPoint("water", 4, Protocol.SNOOPING, REFS, seed=7),
    SweepPoint("water", 4, Protocol.DIRECTORY, REFS, seed=7),
    SweepPoint("mp3d", 16, Protocol.SNOOPING, REFS),
]


def _serial_run(point: SweepPoint):
    result = run_simulation(
        point.benchmark,
        config=point.resolved_config(),
        data_refs=point.data_refs,
        num_processors=point.num_processors,
    )
    return result, last_kernel_counters()


def test_fastpath_toggle_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    assert fastpath_enabled()
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    assert not fastpath_enabled()


def test_serial_parallel_cached_and_fastpath_all_bit_identical(
    temp_store, monkeypatch
):
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)

    # 1. Serial, fast path on (the default everyone runs).
    fast = []
    fast_events = {}
    for point in POINTS:
        result, counters = _serial_run(point)
        fast.append(result_to_jsonable(result))
        fast_events[point] = counters["events_processed"]

    # 2. Process-pool execution (workers inherit the fast path).
    parallel = execute_points(POINTS, jobs=2)
    assert [result_to_jsonable(r) for r in parallel.results] == fast

    # 3. Cache replay: memo cleared, every point served from disk.
    clear_simulation_cache(disk=False)
    cached = execute_points(POINTS, jobs=1)
    assert cached.cache_hits == len(POINTS)
    assert [result_to_jsonable(r) for r in cached.results] == fast

    # 4. Serial reference path: per-arrival polling, no relays.
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    for point, expected in zip(POINTS, fast):
        result, counters = _serial_run(point)
        assert result_to_jsonable(result) == expected, (
            f"fast path diverged for {point.benchmark}"
            f"@{point.num_processors}p {point.protocol.value}"
        )
        # The reference path wakes the sender at every arrival the
        # relay silently hops past, so it can never pop fewer events.
        assert counters["events_processed"] >= fast_events[point]
        assert counters["relay_hops"] == 0

    # And the fast path genuinely engaged somewhere: the contended
    # 16-processor snooping ring must have saved generator resumes.
    contended = POINTS[-1]
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    _, counters = _serial_run(contended)
    assert counters["relay_hops"] > 0


def test_flatcore_toggle_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_NO_FLATCORE", raising=False)
    assert flatcore_enabled()
    monkeypatch.setenv("REPRO_NO_FLATCORE", "1")
    assert not flatcore_enabled()


# ----------------------------------------------------------------------
# Flat-core x fast-path matrix: the flat state-machine dispatch and the
# relay fast path are independent optimisations, so every combination
# of the two toggles must produce the same bits -- including telemetry
# event streams and with per-commit invariant checking enabled.
# ----------------------------------------------------------------------
MATRIX = [
    pytest.param(False, False, id="flat+fastpath"),
    pytest.param(False, True, id="flat+reference"),
    pytest.param(True, False, id="coroutine+fastpath"),
    pytest.param(True, True, id="coroutine+reference"),
]

#: Baseline (both optimisations on) per protocol, computed lazily so
#: each parametrized case compares against one shared reference run.
_matrix_baseline: dict = {}


def _toggled_run(point, no_flatcore, no_fastpath, monkeypatch):
    if no_flatcore:
        monkeypatch.setenv("REPRO_NO_FLATCORE", "1")
    else:
        monkeypatch.delenv("REPRO_NO_FLATCORE", raising=False)
    if no_fastpath:
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    else:
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    tracer = Tracer()
    result = run_simulation(
        point.benchmark,
        config=point.resolved_config(),
        data_refs=point.data_refs,
        num_processors=point.num_processors,
        tracer=tracer,
        check_invariants=True,
    )
    return result_to_jsonable(result), tracer.events()


@pytest.mark.parametrize("no_flatcore,no_fastpath", MATRIX)
@pytest.mark.parametrize(
    "protocol",
    [
        Protocol.SNOOPING,
        Protocol.DIRECTORY,
        Protocol.LINKED_LIST,
        Protocol.BUS,
        Protocol.HIERARCHICAL,
    ],
)
def test_flatcore_fastpath_matrix_bit_identical(
    protocol, no_flatcore, no_fastpath, monkeypatch
):
    processors = 16 if protocol is Protocol.SNOOPING else 4
    point = SweepPoint("mp3d", processors, protocol, REFS)
    baseline = _matrix_baseline.get(protocol)
    if baseline is None:
        baseline = _matrix_baseline[protocol] = _toggled_run(
            point, False, False, monkeypatch
        )
    got = _toggled_run(point, no_flatcore, no_fastpath, monkeypatch)
    assert got[0] == baseline[0], (
        f"results diverged for {protocol.value} with "
        f"NO_FLATCORE={no_flatcore} NO_FASTPATH={no_fastpath}"
    )
    assert got[1] == baseline[1], (
        f"telemetry diverged for {protocol.value} with "
        f"NO_FLATCORE={no_flatcore} NO_FASTPATH={no_fastpath}"
    )


def test_flat_engines_skip_generator_resumes(monkeypatch):
    """The flat core is live by default: a snooping run spawns flat
    machines (no per-transaction generators), and the coroutine
    fallback reproduces the same bits while doing the same event
    work (event counts line up one-to-one across the toggle)."""
    point = SweepPoint("mp3d", 8, Protocol.SNOOPING, REFS)
    monkeypatch.delenv("REPRO_NO_FLATCORE", raising=False)
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    flat_result, flat_counters = _serial_run(point)
    monkeypatch.setenv("REPRO_NO_FLATCORE", "1")
    coro_result, coro_counters = _serial_run(point)
    assert result_to_jsonable(flat_result) == result_to_jsonable(coro_result)
    assert (
        flat_counters["events_processed"]
        == coro_counters["events_processed"]
    )


@pytest.mark.parametrize("protocol", [Protocol.SNOOPING, Protocol.DIRECTORY])
def test_reference_path_does_strictly_more_event_work(protocol, monkeypatch):
    """On a contended ring the relay optimisation is not a no-op."""
    point = SweepPoint("mp3d", 16, protocol, REFS)
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    _, fast = _serial_run(point)
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    _, reference = _serial_run(point)
    # Relay hops are single heap pops; polling wakes are full generator
    # resumes.  Event counts line up one-to-one, so the comparison is
    # exact: the reference pops at least as many events, and the gap is
    # precisely what the fast path skipped resuming.
    assert reference["events_processed"] >= fast["events_processed"]
    assert fast["relay_hops"] > 0
