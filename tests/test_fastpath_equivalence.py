"""Bit-identity of the scheduler/kernel fast path, across all engines.

The acquire fast path (relay wakes, arrival-base memoisation) and the
lazy-cancellation kernel must be pure optimisations: for every
protocol and seed, the ``SimulationResult`` -- statistics, latencies,
telemetry histograms, everything that serialises -- must be
bit-identical across

* the serial fast path (the default),
* the serial reference path (``REPRO_NO_FASTPATH=1``, per-arrival
  polling kept verbatim in the scheduler for bisection),
* a multi-process ``execute_points`` run, and
* a cache replay from the persistent store.

The env-var toggle is the bisection tool: any future divergence can be
attributed to the fast path (or not) by flipping it.
"""

from __future__ import annotations

import pytest

from repro.core.config import Protocol
from repro.core.experiment import (
    clear_simulation_cache,
    last_kernel_counters,
    run_simulation,
)
from repro.core.parallel import SweepPoint, execute_points
from repro.core.store import result_to_jsonable
from repro.ring.scheduler import fastpath_enabled

REFS = 300

#: Every protocol engine, plus a reseeded variant and a larger ring
#: with real slot contention (where the fast path actually engages).
POINTS = [
    SweepPoint("mp3d", 4, Protocol.SNOOPING, REFS),
    SweepPoint("mp3d", 4, Protocol.DIRECTORY, REFS),
    SweepPoint("mp3d", 4, Protocol.LINKED_LIST, REFS),
    SweepPoint("mp3d", 4, Protocol.BUS, REFS),
    SweepPoint("mp3d", 4, Protocol.HIERARCHICAL, REFS),
    SweepPoint("water", 4, Protocol.SNOOPING, REFS, seed=7),
    SweepPoint("water", 4, Protocol.DIRECTORY, REFS, seed=7),
    SweepPoint("mp3d", 16, Protocol.SNOOPING, REFS),
]


def _serial_run(point: SweepPoint):
    result = run_simulation(
        point.benchmark,
        config=point.resolved_config(),
        data_refs=point.data_refs,
        num_processors=point.num_processors,
    )
    return result, last_kernel_counters()


def test_fastpath_toggle_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    assert fastpath_enabled()
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    assert not fastpath_enabled()


def test_serial_parallel_cached_and_fastpath_all_bit_identical(
    temp_store, monkeypatch
):
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)

    # 1. Serial, fast path on (the default everyone runs).
    fast = []
    fast_events = {}
    for point in POINTS:
        result, counters = _serial_run(point)
        fast.append(result_to_jsonable(result))
        fast_events[point] = counters["events_processed"]

    # 2. Process-pool execution (workers inherit the fast path).
    parallel = execute_points(POINTS, jobs=2)
    assert [result_to_jsonable(r) for r in parallel.results] == fast

    # 3. Cache replay: memo cleared, every point served from disk.
    clear_simulation_cache(disk=False)
    cached = execute_points(POINTS, jobs=1)
    assert cached.cache_hits == len(POINTS)
    assert [result_to_jsonable(r) for r in cached.results] == fast

    # 4. Serial reference path: per-arrival polling, no relays.
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    for point, expected in zip(POINTS, fast):
        result, counters = _serial_run(point)
        assert result_to_jsonable(result) == expected, (
            f"fast path diverged for {point.benchmark}"
            f"@{point.num_processors}p {point.protocol.value}"
        )
        # The reference path wakes the sender at every arrival the
        # relay silently hops past, so it can never pop fewer events.
        assert counters["events_processed"] >= fast_events[point]
        assert counters["relay_hops"] == 0

    # And the fast path genuinely engaged somewhere: the contended
    # 16-processor snooping ring must have saved generator resumes.
    contended = POINTS[-1]
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    _, counters = _serial_run(contended)
    assert counters["relay_hops"] > 0


@pytest.mark.parametrize("protocol", [Protocol.SNOOPING, Protocol.DIRECTORY])
def test_reference_path_does_strictly_more_event_work(protocol, monkeypatch):
    """On a contended ring the relay optimisation is not a no-op."""
    point = SweepPoint("mp3d", 16, protocol, REFS)
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    _, fast = _serial_run(point)
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    _, reference = _serial_run(point)
    # Relay hops are single heap pops; polling wakes are full generator
    # resumes.  Event counts line up one-to-one, so the comparison is
    # exact: the reference pops at least as many events, and the gap is
    # precisely what the fast path skipped resuming.
    assert reference["events_processed"] >= fast["events_processed"]
    assert fast["relay_hops"] > 0
