"""Slot-occupancy accounting: simulator vs telemetry vs model.

The same quantity -- how long a message keeps a ring slot busy -- is
tracked in three places:

* the scheduler's per-slot ``busy_cycles`` and per-type
  ``granted_cycles`` counters (feeding ``utilization()``);
* the telemetry ``slot_occupancy`` histograms
  (:class:`repro.obs.histograms.Histograms`);
* the analytical occupancy of :func:`repro.models.ring_common.
  compute_contention` (``ring_cycles`` per broadcast, ``distance``
  per unicast).

Broadcast slots are the delicate case: their traversal spans every
frame boundary (occupancy ``total_stages`` > ``frame_stages``), so an
off-by-a-frame in release accounting would show up as telemetry
disagreeing with the model.  These tests pin all three views together,
with grab cycles deliberately misaligned to the frame grid.
"""

from __future__ import annotations

import pytest

from repro.models.base import slot_wait
from repro.obs.histograms import Histograms
from repro.ring.scheduler import SlotScheduler
from repro.ring.slots import FrameLayout, SlotType
from repro.ring.topology import RingTopology
from repro.sim.kernel import Simulator

CLOCK_PS = 2_000


def make_instrumented_scheduler(num_nodes=8, fastpath=None):
    sim = Simulator()
    sim.histograms = Histograms()
    layout = FrameLayout()
    topology = RingTopology.for_layout(num_nodes, layout)
    scheduler = SlotScheduler(
        sim, topology, layout, clock_ps=CLOCK_PS, fastpath=fastpath
    )
    return sim, topology, layout, scheduler


def run_broadcasts(sim, topology, scheduler, senders):
    """Each sender broadcasts once (full-traversal probe occupancy)."""
    grants = []
    total = topology.total_stages

    def body(node, delay_cycles):
        if delay_cycles:
            yield sim.timeout(delay_cycles * CLOCK_PS)
        grant = yield from scheduler.acquire(
            node,
            SlotType.PROBE_EVEN,
            occupancy_cycles=total,
            removed_by=node,
        )
        grants.append(grant)

    for node, delay in senders:
        sim.spawn(body(node, delay))
    sim.run()
    return grants


@pytest.mark.parametrize("fastpath", [True, False])
def test_broadcast_occupancy_spans_frames_exactly(fastpath):
    sim, topology, layout, scheduler = make_instrumented_scheduler(
        fastpath=fastpath
    )
    total = topology.total_stages
    assert total > layout.frame_stages  # broadcasts do wrap frames
    # Deliberately frame-misaligned start times: grants whose busy
    # interval crosses frame boundaries at every alignment.
    senders = [(0, 0), (3, 1), (5, layout.frame_stages - 1), (1, 7)]
    grants = run_broadcasts(sim, topology, scheduler, senders)
    assert len(grants) == len(senders)
    for grant in grants:
        # A broadcast holds its slot for exactly one traversal, no
        # matter where in the frame grid the grab happened.
        assert grant.release_cycle - grant.grab_cycle == total
        assert grant.slot.free_at_cycle >= grant.release_cycle
    # Scheduler counters, per-slot counters and telemetry histograms
    # are three bookkeepers of the same grants.
    expected_cycles = len(grants) * total
    assert scheduler.granted_cycles[SlotType.PROBE_EVEN] == expected_cycles
    assert (
        sum(s.busy_cycles for s in scheduler.slots_of(SlotType.PROBE_EVEN))
        == expected_cycles
    )
    histogram = sim.histograms.finalize().slot_occupancy["probe-even"]
    assert histogram.count == len(grants)
    assert histogram.total == expected_cycles
    assert histogram.min == histogram.max == total


@pytest.mark.parametrize("fastpath", [True, False])
def test_unicast_occupancy_matches_ring_distance(fastpath):
    sim, topology, layout, scheduler = make_instrumented_scheduler(
        fastpath=fastpath
    )
    pairs = [(0, 1), (2, 7), (6, 3), (4, 5)]
    grants = []

    def body(src, dst):
        grant = yield from scheduler.acquire(
            src,
            SlotType.BLOCK,
            occupancy_cycles=topology.distance(src, dst),
            removed_by=dst,
        )
        grants.append((src, dst, grant))

    for src, dst in pairs:
        sim.spawn(body(src, dst))
    sim.run()
    assert len(grants) == len(pairs)
    expected_total = 0
    for src, dst, grant in grants:
        distance = topology.distance(src, dst)
        assert grant.occupancy == distance
        expected_total += distance
    assert scheduler.granted_cycles[SlotType.BLOCK] == expected_total
    histogram = sim.histograms.finalize().slot_occupancy["block"]
    assert histogram.count == len(pairs)
    assert histogram.total == expected_total


def test_measured_utilization_matches_analytical_occupancy():
    """Simulated slot utilisation == the model's occupancy arithmetic.

    ``compute_contention`` rates probe utilisation as
    ``rate x mean_occupancy / num_slots`` with ``mean_occupancy =
    ring_cycles`` for broadcasts.  Driving the scheduler with a known
    broadcast count over a known window reduces both sides to the same
    closed form, so they must agree exactly -- this is the cross-check
    that the event-driven accounting (including frame-wrapping
    traversals) measures the quantity the model predicts.
    """
    sim, topology, layout, scheduler = make_instrumented_scheduler()
    total = topology.total_stages
    rounds = 6
    # One broadcast per node per revolution, round-robin: a known
    # message count with every traversal wrapping the frame grid.
    senders = [
        (node, burst * total) for burst in range(rounds) for node in (0, 4)
    ]
    grants = run_broadcasts(sim, topology, scheduler, senders)
    elapsed_ps = max(g.release_cycle for g in grants) * CLOCK_PS

    def idle():
        yield sim.timeout(elapsed_ps - sim.now)

    sim.spawn(idle())
    sim.run()

    measured = scheduler.utilization(SlotType.PROBE_EVEN, elapsed_ps)
    # The model's occupancy arithmetic for the same traffic.
    num_slots = len(scheduler.slots_of(SlotType.PROBE_EVEN))
    messages = len(grants)
    elapsed_cycles = elapsed_ps // CLOCK_PS
    analytical = (messages * total) / (num_slots * elapsed_cycles)
    assert measured == pytest.approx(analytical, rel=1e-12)
    # Telemetry mean occupancy is the model's broadcast occupancy.
    histogram = sim.histograms.finalize().slot_occupancy["probe-even"]
    assert histogram.mean == pytest.approx(float(total))


def test_slot_wait_model_sanity():
    """The M/D/1-ish slot-wait helper brackets the simulated regime.

    Not an equality (the model is a queueing approximation, the
    simulator is exact), but the model's zero-load limit -- half a
    slot period -- must match the simulator's average wait for an
    uncontended slot stream, which is uniform over the period.
    """
    layout = FrameLayout()
    period_ps = layout.frame_stages * CLOCK_PS / (layout.probe_slots / 2)
    assert slot_wait(0.0, period_ps) == pytest.approx(period_ps / 2.0)


@pytest.mark.parametrize("fastpath", [True, False])
def test_fairness_bump_keeps_busy_accounting_consistent(fastpath):
    """Anti-starvation re-grabs never double-count busy cycles."""
    sim, topology, _, scheduler = make_instrumented_scheduler(
        fastpath=fastpath
    )
    total = topology.total_stages
    for slot in scheduler.slots_of(SlotType.PROBE_EVEN):
        if slot.index != 0:
            slot.free_at_cycle = 1000 * total
    grants = []

    def body():
        for _ in range(3):
            grant = yield from scheduler.acquire(
                0, SlotType.PROBE_EVEN, occupancy_cycles=total, removed_by=0
            )
            grants.append(grant)

    sim.spawn(body())
    sim.run()
    assert len(grants) == 3
    # Each re-grab waits out the fairness revolution...
    for earlier, later in zip(grants, grants[1:]):
        assert later.grab_cycle == earlier.release_cycle + total
    # ...and the busy time still counts each traversal exactly once.
    slot = grants[0].slot
    assert slot.busy_cycles == 3 * total
    assert scheduler.granted_cycles[SlotType.PROBE_EVEN] == 3 * total
