"""Unit tests for configuration objects."""

import pytest

from repro.core.config import (
    BusConfig,
    CacheConfig,
    ProcessorConfig,
    Protocol,
    RingConfig,
    SystemConfig,
)


def test_defaults_match_paper_baseline():
    config = SystemConfig()
    assert config.ring.clock_ps == 2_000  # 500 MHz
    assert config.ring.width_bits == 32
    assert config.cache.size_bytes == 128 * 1024
    assert config.cache.block_size == 16
    assert config.memory.access_ps == 140_000
    assert config.processor.cycle_ps == 20_000  # 50 MIPS
    assert config.bus.width_bits == 64


def test_ring_clock_mhz():
    assert RingConfig(clock_ps=2_000).clock_mhz == pytest.approx(500.0)
    assert RingConfig(clock_ps=4_000).clock_mhz == pytest.approx(250.0)


def test_bus_six_cycle_minimum():
    bus = BusConfig()
    assert bus.request_cycles + bus.reply_cycles == 6


def test_bus_with_clock_mhz():
    bus = BusConfig().with_clock_mhz(100)
    assert bus.clock_ps == 10_000
    assert bus.clock_mhz == pytest.approx(100.0)


def test_processor_mips_roundtrip():
    processor = ProcessorConfig().with_mips(400)
    assert processor.cycle_ps == 2_500
    assert processor.mips == pytest.approx(400.0)


def test_cache_line_count():
    assert CacheConfig().num_lines == 8_192


def test_system_layout_and_topology():
    config = SystemConfig(num_processors=8)
    layout = config.ring_layout()
    topology = config.ring_topology()
    assert layout.frame_stages == 10
    assert topology.total_stages == 30


def test_protocol_uses_ring():
    assert Protocol.SNOOPING.uses_ring
    assert Protocol.DIRECTORY.uses_ring
    assert Protocol.LINKED_LIST.uses_ring
    assert not Protocol.BUS.uses_ring


def test_too_few_processors_rejected():
    with pytest.raises(ValueError):
        SystemConfig(num_processors=1)


def test_ring_layout_respects_slot_mix():
    config = RingConfig(probe_slots=4, block_slots=2)
    layout = config.layout(block_size=16)
    assert layout.probe_slots == 4
    assert layout.block_slots == 2


def test_configs_are_hashable_for_caching():
    a = SystemConfig()
    assert hash(a.ring) == hash(RingConfig())
    assert hash(a.bus) == hash(BusConfig())
