"""Tests for the hybrid methodology layer (simulate once, model many)."""

import pytest

from repro.core.config import Protocol
from repro.core.experiment import clear_simulation_cache
from repro.core.hybrid import hybrid_sweep, validate_model
from repro.core.sweep import (
    miss_breakdown,
    ring_vs_bus,
    snooping_vs_directory,
)

REFS = 1_500


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_simulation_cache()
    yield
    clear_simulation_cache()


def test_hybrid_sweep_covers_paper_axis():
    sweep = hybrid_sweep("mp3d", 4, Protocol.SNOOPING, data_refs=REFS)
    assert sweep.cycles_ns() == [float(c) for c in range(1, 21)]
    assert all(0.0 < p.processor_utilization <= 1.0 for p in sweep.points)


def test_hybrid_sweep_monotone_utilization():
    sweep = hybrid_sweep("mp3d", 4, Protocol.SNOOPING, data_refs=REFS)
    utilization = sweep.series("processor_utilization")
    # Slower processors (larger cycles) always utilise better.
    assert all(b >= a for a, b in zip(utilization, utilization[1:]))


def test_bus_sweep_uses_snooping_extraction():
    sweep = hybrid_sweep("mp3d", 4, Protocol.BUS, data_refs=REFS)
    assert sweep.protocol is Protocol.SNOOPING  # inputs carry extraction
    assert "bus" in sweep.label


def test_snooping_vs_directory_pair():
    snoop, directory = snooping_vs_directory("mp3d", 4, data_refs=REFS)
    assert "snooping" in snoop.label
    assert "directory" in directory.label
    # The paper's headline: snooping at least matches directory for
    # MP3D at every operating point.
    for s, d in zip(
        snoop.series("processor_utilization"),
        directory.series("processor_utilization"),
    ):
        assert s >= d - 0.02


def test_ring_vs_bus_family():
    sweeps = ring_vs_bus("mp3d", 4, data_refs=REFS)
    labels = [sweep.label for sweep in sweeps]
    assert labels == [
        "snooping ring 500 MHz",
        "snooping ring 250 MHz",
        "bus 100 MHz",
        "bus 50 MHz",
    ]
    fast_ring = sweeps[0].at_cycle(1.0).processor_utilization
    slow_bus = sweeps[3].at_cycle(1.0).processor_utilization
    assert fast_ring > slow_bus  # rings win with fast processors


def test_faster_ring_beats_slower_ring():
    sweeps = ring_vs_bus("mp3d", 4, data_refs=REFS)
    ring500, ring250 = sweeps[0], sweeps[1]
    assert (
        ring500.at_cycle(2.0).processor_utilization
        >= ring250.at_cycle(2.0).processor_utilization
    )


def test_miss_breakdown_sums_to_100():
    breakdown = miss_breakdown([("mp3d", 4)], data_refs=REFS)
    row = breakdown["mp3d4"]
    assert set(row) == {"1-cycle clean", "1-cycle dirty", "2-cycle"}
    assert sum(row.values()) == pytest.approx(100.0, abs=0.01)


def test_validation_within_paper_tolerances():
    """The paper: within 15% for latencies, 5 points for utilisations."""
    report = validate_model("mp3d", 4, Protocol.SNOOPING, data_refs=REFS)
    assert report.utilization_error < 0.05
    assert report.network_error < 0.05
    assert report.latency_error_percent < 15.0


def test_validation_directory_protocol():
    report = validate_model("mp3d", 4, Protocol.DIRECTORY, data_refs=REFS)
    assert report.utilization_error < 0.05
    assert report.latency_error_percent < 15.0
