"""Tests for the linked-list analytical model."""

import pytest

from repro.core.config import Protocol, SystemConfig
from repro.core.hybrid import hybrid_sweep, validate_model
from repro.core.metrics import MissClass
from repro.models.ring_directory import DirectoryRingModel
from repro.models.ring_linkedlist import LinkedListRingModel
from tests.test_models import make_inputs


def make_linkedlist_inputs(**overrides):
    from dataclasses import replace

    base = make_inputs(protocol=Protocol.LINKED_LIST)
    defaults = dict(
        f_forwards=0.008,
        mean_miss_traversals=1.2,
        mean_upgrade_traversals=2.3,
    )
    defaults.update(overrides)
    return replace(base, **defaults)


def test_forwarding_raises_clean_latency():
    config = SystemConfig(num_processors=8, protocol=Protocol.LINKED_LIST)
    inputs = make_linkedlist_inputs()
    linked = LinkedListRingModel(config, inputs)
    directory = DirectoryRingModel(config, inputs)
    time_ps = 100_000.0
    assert (
        linked.breakdown(time_ps).latencies["remote_clean"]
        > directory.breakdown(time_ps).latencies["remote_clean"]
    )


def test_no_forwards_matches_directory_clean_latency():
    config = SystemConfig(num_processors=8, protocol=Protocol.LINKED_LIST)
    inputs = make_linkedlist_inputs(f_forwards=0.0)
    linked = LinkedListRingModel(config, inputs)
    directory = DirectoryRingModel(config, inputs)
    time_ps = 100_000.0
    assert linked.breakdown(time_ps).latencies[
        "remote_clean"
    ] == pytest.approx(
        directory.breakdown(time_ps).latencies["remote_clean"]
    )


def test_purge_walk_scales_with_traversals():
    config = SystemConfig(num_processors=8, protocol=Protocol.LINKED_LIST)
    short = LinkedListRingModel(
        config, make_linkedlist_inputs(mean_upgrade_traversals=1.5)
    )
    long = LinkedListRingModel(
        config, make_linkedlist_inputs(mean_upgrade_traversals=4.0)
    )
    time_ps = 100_000.0
    assert (
        long.breakdown(time_ps).latencies["upgrade_with"]
        > short.breakdown(time_ps).latencies["upgrade_with"]
    )


def test_sweep_label_names_protocol():
    config = SystemConfig(num_processors=8, protocol=Protocol.LINKED_LIST)
    model = LinkedListRingModel(config, make_linkedlist_inputs())
    sweep = model.sweep([10.0])
    assert "linked-list" in sweep.label


def test_hybrid_routes_linked_list():
    sweep = hybrid_sweep("mp3d", 4, Protocol.LINKED_LIST, data_refs=1_200)
    assert "linked-list" in sweep.label
    assert all(0.0 < p.processor_utilization <= 1.0 for p in sweep.points)


def test_validation_within_paper_tolerances():
    report = validate_model(
        "mp3d", 4, Protocol.LINKED_LIST, data_refs=1_500
    )
    assert report.utilization_error < 0.05
    assert report.latency_error_percent < 15.0


def test_linked_list_never_beats_directory_utilization():
    """Structural expectation: the linked list pays extra hops, so its
    modelled utilisation trails the full map's on the same workload."""
    directory_sweep = hybrid_sweep(
        "mp3d", 4, Protocol.DIRECTORY, data_refs=1_500
    )
    linked_sweep = hybrid_sweep(
        "mp3d", 4, Protocol.LINKED_LIST, data_refs=1_500
    )
    for cycle in (20.0, 5.0):
        assert (
            linked_sweep.at_cycle(cycle).processor_utilization
            <= directory_sweep.at_cycle(cycle).processor_utilization + 0.02
        )
