"""Telemetry layer: histograms, tracing, and the zero-cost contract.

Three properties matter:

* recording changes nothing -- a run with a tracer attached produces a
  bit-identical ``SimulationResult`` to one without (the hooks observe,
  never schedule);
* the Chrome export is well-formed -- parses as JSON, timestamps are
  monotonically non-decreasing per track, and events from several
  distinct components are present;
* no hot-path module imports ``repro.obs`` at module level -- the
  telemetry package stays strictly optional for the simulation core.
"""

from __future__ import annotations

import ast
import json
import pathlib

import pytest

import repro
from repro.core.experiment import run_simulation
from repro.core.store import result_to_jsonable
from repro.obs import Histogram, Histograms, TraceEvent, Tracer

REFS = 800


# ----------------------------------------------------------------------
# Histogram unit behaviour
# ----------------------------------------------------------------------
def test_exact_histogram_counts_each_value():
    histogram = Histogram("exact")
    for value in (3, 3, 5, 0):
        histogram.record(value)
    assert histogram.as_counts() == {3: 2, 5: 1, 0: 1}
    assert histogram.count == 4
    assert histogram.total == 11
    assert (histogram.min, histogram.max) == (0, 5)
    assert histogram.mean == pytest.approx(2.75)


def test_log2_histogram_buckets_by_power_of_two():
    histogram = Histogram("log2")
    for value in (0, 1, 2, 3, 4, 7, 8, 1023):
        histogram.record(value)
    assert histogram.as_counts() == {0: 1, 1: 1, 2: 2, 4: 2, 8: 1, 512: 1}
    # Summary statistics stay exact despite the coarse buckets.
    assert histogram.total == 1048
    assert histogram.max == 1023


def test_histogram_percentile_is_bucket_lower_bound():
    histogram = Histogram("exact")
    for value in range(1, 11):  # 1..10, one each
        histogram.record(value)
    assert histogram.percentile(0.5) == 5
    assert histogram.percentile(0.9) == 9
    assert histogram.percentile(1.0) == 10
    assert Histogram("exact").percentile(0.5) == 0  # empty


def test_histogram_rejects_bad_input():
    with pytest.raises(ValueError):
        Histogram("linear")
    with pytest.raises(ValueError):
        Histogram("exact").record(-1)
    with pytest.raises(ValueError):
        Histogram("exact").percentile(1.5)
    exact, log2 = Histogram("exact"), Histogram("log2")
    with pytest.raises(ValueError):
        exact.merge(log2)


def test_histogram_merge_and_roundtrip():
    first, second = Histogram("log2"), Histogram("log2")
    for value in (1, 5, 9):
        first.record(value)
    for value in (5, 100):
        second.record(value)
    first.merge(second)
    assert first.count == 5
    assert first.total == 120
    payload = json.loads(json.dumps(first.to_jsonable()))
    assert Histogram.from_jsonable(payload) == first


def test_histograms_container_roundtrips_and_merges():
    histograms = Histograms()
    histograms.record_slot_grant("probe-even", 30, 4)
    histograms.record_slot_grant("block", 15, 0)
    histograms.record_miss("remote-clean", 250_000)
    histograms.record_upgrade(96_000)
    histograms.record_queue_depth("mem0", 2)

    payload = json.loads(json.dumps(histograms.to_jsonable()))
    rebuilt = Histograms.from_jsonable(payload)
    assert rebuilt == histograms
    assert rebuilt.to_jsonable() == histograms.to_jsonable()

    other = Histograms()
    other.record_slot_grant("probe-even", 30, 8)
    other.record_miss("private", 130_000)
    histograms.merge(other)
    assert histograms.slot_occupancy["probe-even"].count == 2
    assert histograms.miss_latency["private"].count == 1
    assert "private" in histograms.render()


# ----------------------------------------------------------------------
# Tracer unit behaviour
# ----------------------------------------------------------------------
def test_tracer_ring_buffer_drops_oldest():
    tracer = Tracer(capacity=3)
    for index in range(5):
        tracer.instant(index * 100, "test", f"ev{index}", "track")
    assert tracer.emitted == 5
    assert tracer.dropped == 2
    assert [event.name for event in tracer.events()] == ["ev2", "ev3", "ev4"]


def test_tracer_jsonl_lines_parse(tmp_path):
    tracer = Tracer()
    tracer.instant(1_000, "kernel", "process.spawn", "kernel", process="p")
    tracer.complete(2_000, 500, "ring.scheduler", "slot.grant", "slot:block")
    path = tmp_path / "trace.jsonl"
    assert tracer.write_jsonl(path) == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["name"] == "process.spawn"
    assert lines[1] == {
        "ts_ps": 2_000,
        "dur_ps": 500,
        "ph": "X",
        "cat": "ring.scheduler",
        "name": "slot.grant",
        "track": "slot:block",
    }


def test_trace_event_is_immutable():
    event = TraceEvent(0, 0, "i", "test", "name", "track")
    with pytest.raises(AttributeError):
        event.ts_ps = 5


# ----------------------------------------------------------------------
# Recording changes nothing
# ----------------------------------------------------------------------
def test_traced_run_is_bit_identical_to_untraced():
    plain = run_simulation("mp3d", num_processors=4, data_refs=REFS)
    tracer = Tracer()
    traced = run_simulation(
        "mp3d", num_processors=4, data_refs=REFS, tracer=tracer
    )
    assert tracer.emitted > 0
    assert result_to_jsonable(traced) == result_to_jsonable(plain)
    # Telemetry histograms are part of that payload and populated.
    assert plain.telemetry is not None
    assert plain.telemetry == traced.telemetry
    assert plain.telemetry.miss_latency


# ----------------------------------------------------------------------
# Chrome export of a real run
# ----------------------------------------------------------------------
def test_chrome_trace_roundtrips_and_orders_timestamps(tmp_path):
    tracer = Tracer()
    run_simulation("mp3d", num_processors=4, data_refs=REFS, tracer=tracer)
    path = tmp_path / "trace.json"
    tracer.write_chrome(path)
    document = json.loads(path.read_text())

    events = document["traceEvents"]
    body = [event for event in events if event["ph"] != "M"]
    assert body, "trace must contain non-metadata events"

    # Per-track timestamps never go backwards.
    last_ts = {}
    for event in body:
        key = (event["pid"], event["tid"])
        assert event["ts"] >= last_ts.get(key, 0.0)
        last_ts[key] = event["ts"]

    # Events from at least three distinct instrumented components,
    # including the slot scheduler, ring messages and misses.
    categories = {event["cat"] for event in body}
    assert len(categories) >= 3
    names = {event["name"] for event in body}
    assert "slot.grant" in names
    assert any(name.startswith("msg.") for name in names)
    assert "miss" in names

    # Every tid used by an event has a thread_name metadata record.
    named_tids = {
        event["tid"]
        for event in events
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    assert {event["tid"] for event in body} <= named_tids


# ----------------------------------------------------------------------
# Hot-path modules never import an observer package at module level
# (repro.obs = tracing/histograms, repro.check = invariant monitor);
# both attach through duck-typed kernel attributes instead.  numpy is
# in the same list: the simulation kernel must stay importable and
# fast without it (only repro.models.grid may use it, lazily).
# ----------------------------------------------------------------------
OBSERVER_PACKAGES = ("repro.obs", "repro.check", "numpy")

HOT_PATH_MODULES = (
    "sim/kernel.py",
    "sim/queues.py",
    "sim/flatcore.py",
    "ring/base.py",
    "ring/scheduler.py",
    "ring/flatring.py",
    "ring/flatsnooping.py",
    "ring/flatdirectory.py",
    "ring/snooping.py",
    "ring/directory.py",
    "ring/linkedlist.py",
    "ring/hierarchical.py",
    "bus/bus.py",
    "proc/processor.py",
    "memory/bank.py",
    "memory/cache.py",
    "core/metrics.py",
)


@pytest.mark.parametrize("relative", HOT_PATH_MODULES)
@pytest.mark.parametrize("package", OBSERVER_PACKAGES)
def test_hot_path_modules_do_not_import_observers(relative, package):
    root = pathlib.Path(repro.__file__).parent
    tree = ast.parse((root / relative).read_text())
    for node in tree.body:  # module level only: inline imports are fine
        if isinstance(node, ast.Import):
            assert not any(
                alias.name.startswith(package) for alias in node.names
            ), f"{relative} imports {package} at module level"
        elif isinstance(node, ast.ImportFrom):
            assert not (node.module or "").startswith(
                package
            ), f"{relative} imports {package} at module level"
