"""Integration tests for the simulation driver."""

import pytest

from repro.core.config import Protocol, SystemConfig
from repro.core.experiment import (
    clear_simulation_cache,
    run_simulation,
    run_simulation_cached,
)
from repro.core.metrics import MissClass

REFS = 1_500  # small but non-trivial traces for integration checks


@pytest.fixture(scope="module")
def snooping_result():
    return run_simulation(
        "mp3d", num_processors=4, protocol=Protocol.SNOOPING, data_refs=REFS
    )


def test_result_metrics_sane(snooping_result):
    result = snooping_result
    assert 0.0 < result.processor_utilization <= 1.0
    assert 0.0 <= result.network_utilization <= 1.0
    assert result.shared_miss_latency_ns > 0.0
    assert result.elapsed_ps > 0
    assert result.instructions > 4 * REFS  # > 1 instr per data ref


def test_trace_characteristics_match_workload(snooping_result):
    trace = snooping_result.trace
    assert trace.benchmark == "mp3d"
    assert trace.processors == 4
    assert trace.data_refs == 4 * REFS
    assert 0.0 < trace.shared_fraction < 1.0
    assert trace.total_miss_rate_percent > 0.0
    assert trace.shared_miss_rate_percent > trace.total_miss_rate_percent


def test_model_inputs_extracted(snooping_result):
    inputs = snooping_result.inputs
    assert inputs.protocol is Protocol.SNOOPING
    assert inputs.data_refs_per_instr == pytest.approx(
        snooping_result.trace.data_refs / snooping_result.instructions
    )
    assert inputs.f_miss_total() > 0.0
    assert inputs.f_probes > 0.0
    # Snooping probes are all broadcasts.
    assert inputs.f_broadcast_probes == pytest.approx(inputs.f_probes)


def test_simulation_is_deterministic():
    a = run_simulation(
        "water", num_processors=4, protocol=Protocol.DIRECTORY, data_refs=800
    )
    b = run_simulation(
        "water", num_processors=4, protocol=Protocol.DIRECTORY, data_refs=800
    )
    assert a.elapsed_ps == b.elapsed_ps
    assert a.processor_utilization == b.processor_utilization
    assert a.stats.probes_sent == b.stats.probes_sent


def test_seed_changes_results():
    from dataclasses import replace

    base = SystemConfig(num_processors=4, protocol=Protocol.SNOOPING)
    a = run_simulation("mp3d", config=base, data_refs=800)
    b = run_simulation("mp3d", config=replace(base, seed=77), data_refs=800)
    assert a.elapsed_ps != b.elapsed_ps


def test_all_protocols_run_all_benchmarks_smoke():
    for protocol in Protocol:
        result = run_simulation(
            "cholesky", num_processors=4, protocol=protocol, data_refs=400
        )
        assert result.processor_utilization > 0.0


def test_directory_produces_figure5_classes():
    result = run_simulation(
        "mp3d", num_processors=8, protocol=Protocol.DIRECTORY, data_refs=REFS
    )
    counts = result.stats.counts_by_class()
    assert counts[MissClass.REMOTE_CLEAN] > 0
    assert counts[MissClass.DIRTY_ONE_CYCLE] + counts[MissClass.TWO_CYCLE] > 0


def test_cached_runs_are_reused():
    clear_simulation_cache()
    first = run_simulation_cached(
        "mp3d", 4, Protocol.SNOOPING, data_refs=500
    )
    second = run_simulation_cached(
        "mp3d", 4, Protocol.SNOOPING, data_refs=500
    )
    assert first is second
    different = run_simulation_cached(
        "mp3d", 4, Protocol.DIRECTORY, data_refs=500
    )
    assert different is not first
    clear_simulation_cache()


def test_spec_object_accepted_directly():
    from repro.traces.benchmarks import benchmark_spec

    spec = benchmark_spec("water", 8).scaled(shared_run_mean=10.0)
    result = run_simulation(spec, data_refs=400)
    assert result.benchmark == "water"
    assert result.config.num_processors == 8


def test_final_state_passes_invariants():
    from repro.core.experiment import build_engine
    from repro.proc.processor import TraceProcessor
    from repro.sim.kernel import Simulator
    from repro.traces.benchmarks import benchmark_spec
    from repro.traces.synthetic import SyntheticTraceGenerator

    sim = Simulator()
    config = SystemConfig(num_processors=4, protocol=Protocol.SNOOPING)
    engine = build_engine(sim, config)
    spec = benchmark_spec("mp3d", 4)
    generator = SyntheticTraceGenerator(spec, engine.address_map, seed=3)
    for node in range(4):
        processor = TraceProcessor(
            sim, node, engine, generator.stream(node, 600), config.processor
        )
        sim.spawn(processor.run())
    sim.run()
    engine.check_invariants()
