"""The legal-state-transition table and its cache-layer enforcement.

``repro.memory.states`` owns the single source of truth for which
(action, before, after) cache-state transitions the three-state
protocol permits; every mutator in ``DirectMappedCache`` routes
through :func:`assert_transition`, so an engine bug that commits an
illegal transition fails loudly at the cache instead of corrupting
state silently.
"""

from __future__ import annotations

import pytest

from repro.memory.cache import DirectMappedCache
from repro.memory.states import (
    ALLOWED_TRANSITIONS,
    LEGAL_STATE_PAIRS,
    CacheState,
    IllegalTransition,
    assert_transition,
)

INV, RS, WE = CacheState.INV, CacheState.RS, CacheState.WE


# ----------------------------------------------------------------------
# The table itself
# ----------------------------------------------------------------------
def test_table_covers_exactly_the_protocol_actions():
    assert set(ALLOWED_TRANSITIONS) == {
        "fill",
        "upgrade",
        "invalidate",
        "downgrade",
        "evict",
    }


def test_table_contents_are_the_three_state_protocol():
    assert ALLOWED_TRANSITIONS["fill"] == {(INV, RS), (INV, WE), (RS, RS)}
    assert ALLOWED_TRANSITIONS["upgrade"] == {(RS, WE)}
    assert ALLOWED_TRANSITIONS["invalidate"] == {(RS, INV), (WE, INV)}
    assert ALLOWED_TRANSITIONS["downgrade"] == {(WE, RS)}
    assert ALLOWED_TRANSITIONS["evict"] == {(RS, INV), (WE, INV)}


def test_legal_state_pairs_is_the_union():
    assert LEGAL_STATE_PAIRS == frozenset(
        pair
        for pairs in ALLOWED_TRANSITIONS.values()
        for pair in pairs
    )


def test_assert_transition_accepts_every_table_entry():
    for action, pairs in ALLOWED_TRANSITIONS.items():
        for before, after in pairs:
            assert_transition(action, before, after)  # must not raise


@pytest.mark.parametrize(
    "action,before,after",
    [
        ("fill", WE, RS),  # a fill never demotes
        ("upgrade", INV, WE),  # upgrade needs an RS copy
        ("upgrade", WE, WE),  # already exclusive: not an upgrade
        ("invalidate", INV, INV),  # nothing to invalidate
        ("downgrade", RS, RS),  # only WE downgrades
        ("evict", INV, INV),  # nothing to evict
    ],
)
def test_assert_transition_rejects_illegal_pairs(action, before, after):
    with pytest.raises(IllegalTransition):
        assert_transition(action, before, after)


def test_assert_transition_rejects_unknown_action():
    with pytest.raises(IllegalTransition):
        assert_transition("teleport", INV, WE)


def test_illegal_transition_is_a_value_error():
    assert issubclass(IllegalTransition, ValueError)


# ----------------------------------------------------------------------
# Cache-layer enforcement
# ----------------------------------------------------------------------
def fresh_cache() -> DirectMappedCache:
    return DirectMappedCache(size_bytes=256, block_size=16)


def test_cache_fill_and_upgrade_follow_the_table():
    cache = fresh_cache()
    cache.fill(0x100, RS)
    assert cache.state_of(0x100) is RS
    cache.apply_upgrade(0x100)
    assert cache.state_of(0x100) is WE


def test_cache_refill_of_shared_copy_is_legal():
    # Concurrent shared-mode readers may re-fill an RS line (RS -> RS).
    cache = fresh_cache()
    cache.fill(0x100, RS)
    cache.fill(0x100, RS)
    assert cache.state_of(0x100) is RS


def test_cache_rejects_upgrade_without_shared_copy():
    cache = fresh_cache()
    with pytest.raises(ValueError):  # no line at all
        cache.apply_upgrade(0x100)
    cache.fill(0x100, WE)
    with pytest.raises(ValueError):  # WE -> WE is not an upgrade
        cache.apply_upgrade(0x100)


def test_cache_snoops_follow_the_table():
    cache = fresh_cache()
    cache.fill(0x100, WE)
    assert cache.snoop_downgrade(0x100) is WE
    assert cache.state_of(0x100) is RS
    assert cache.snoop_invalidate(0x100) is RS
    assert cache.state_of(0x100) is INV
    # Absent lines are no-ops, not violations (probe races are normal).
    assert cache.snoop_invalidate(0x100) is INV
    assert cache.snoop_downgrade(0x100) is INV
