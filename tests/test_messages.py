"""Tests for the ring message records."""

from repro.ring.messages import BlockKind, BlockMessage, Probe, ProbeKind


def test_probe_broadcast_when_no_destination():
    probe = Probe(kind=ProbeKind.READ_MISS, address=0x100, src=2)
    assert probe.is_broadcast
    assert probe.dst is None


def test_probe_unicast_with_destination():
    probe = Probe(kind=ProbeKind.FORWARD, address=0x100, src=2, dst=5)
    assert not probe.is_broadcast


def test_probe_kinds_cover_protocol_vocabulary():
    values = {kind.value for kind in ProbeKind}
    assert {
        "read-miss",
        "write-miss",
        "invalidation",
        "forward",
        "multicast-invalidate",
        "list-pointer",
        "list-purge",
        "ack",
    } == values


def test_block_kinds():
    values = {kind.value for kind in BlockKind}
    assert values == {"miss-reply", "write-back", "sharing-writeback"}


def test_block_message_fields():
    message = BlockMessage(
        kind=BlockKind.MISS_REPLY, address=0x40, src=1, dst=3
    )
    assert message.src == 1 and message.dst == 3


def test_messages_are_immutable():
    import pytest

    probe = Probe(kind=ProbeKind.ACK, address=0, src=0)
    with pytest.raises(AttributeError):
        probe.src = 1
