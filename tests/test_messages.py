"""Tests for the ring message records."""

import pytest

from repro.ring.messages import (
    BlockKind,
    BlockMessage,
    Probe,
    ProbeKind,
    canonical_order,
)


def test_probe_broadcast_when_no_destination():
    probe = Probe(kind=ProbeKind.READ_MISS, address=0x100, src=2)
    assert probe.is_broadcast
    assert probe.dst is None


def test_probe_unicast_with_destination():
    probe = Probe(kind=ProbeKind.FORWARD, address=0x100, src=2, dst=5)
    assert not probe.is_broadcast


def test_probe_kinds_cover_protocol_vocabulary():
    values = {kind.value for kind in ProbeKind}
    assert {
        "read-miss",
        "write-miss",
        "invalidation",
        "forward",
        "multicast-invalidate",
        "list-pointer",
        "list-purge",
        "ack",
    } == values


def test_block_kinds():
    values = {kind.value for kind in BlockKind}
    assert values == {"miss-reply", "write-back", "sharing-writeback"}


def test_block_message_fields():
    message = BlockMessage(
        kind=BlockKind.MISS_REPLY, address=0x40, src=1, dst=3
    )
    assert message.src == 1 and message.dst == 3


def test_messages_are_immutable():
    probe = Probe(kind=ProbeKind.ACK, address=0, src=0)
    with pytest.raises(AttributeError):
        probe.src = 1


# ----------------------------------------------------------------------
# Value semantics: hashing, equality, canonical total order
# ----------------------------------------------------------------------
def test_messages_are_hashable_value_types():
    a = Probe(kind=ProbeKind.READ_MISS, address=0x40, src=1)
    b = Probe(kind=ProbeKind.READ_MISS, address=0x40, src=1)
    assert a == b and hash(a) == hash(b)
    assert len({a, b}) == 1
    block = BlockMessage(kind=BlockKind.MISS_REPLY, address=0x40, src=1, dst=2)
    assert len({block, block}) == 1


def test_probes_order_before_block_messages():
    probe = Probe(kind=ProbeKind.ACK, address=0xFFFF, src=9, dst=9)
    block = BlockMessage(kind=BlockKind.MISS_REPLY, address=0x0, src=0, dst=0)
    assert probe < block and block > probe


def test_broadcast_probes_order_before_unicast_peers():
    broadcast = Probe(kind=ProbeKind.READ_MISS, address=0x40, src=1)
    unicast = Probe(kind=ProbeKind.READ_MISS, address=0x40, src=1, dst=0)
    assert broadcast < unicast


def test_ordering_is_total_and_consistent():
    messages = [
        BlockMessage(kind=BlockKind.WRITE_BACK, address=0x80, src=3, dst=0),
        Probe(kind=ProbeKind.INVALIDATION, address=0x40, src=2, dst=5),
        Probe(kind=ProbeKind.READ_MISS, address=0x80, src=0),
        BlockMessage(kind=BlockKind.MISS_REPLY, address=0x40, src=1, dst=2),
        Probe(kind=ProbeKind.READ_MISS, address=0x40, src=0),
    ]
    ranked = sorted(messages)
    for earlier, later in zip(ranked, ranked[1:]):
        assert earlier < later or earlier.sort_key() == later.sort_key()
        assert earlier <= later and later >= earlier


def test_canonical_order_is_input_order_independent():
    from itertools import permutations

    messages = [
        Probe(kind=ProbeKind.WRITE_MISS, address=0x40, src=2),
        Probe(kind=ProbeKind.READ_MISS, address=0x40, src=1),
        BlockMessage(kind=BlockKind.MISS_REPLY, address=0x40, src=0, dst=1),
    ]
    expected = canonical_order(messages)
    for ordering in permutations(messages):
        assert canonical_order(ordering) == expected
    # Sets too: hash order never leaks into the serialization.
    assert canonical_order(set(messages)) == expected


def test_comparison_with_foreign_types_is_rejected():
    probe = Probe(kind=ProbeKind.ACK, address=0, src=0)
    with pytest.raises(TypeError):
        probe < 42  # noqa: B015
    block = BlockMessage(kind=BlockKind.MISS_REPLY, address=0, src=0, dst=1)
    with pytest.raises(TypeError):
        block >= "x"  # noqa: B015
