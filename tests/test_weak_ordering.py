"""Tests for the write-latency-tolerance (weak ordering) extension.

The paper's section 6 argues the slotted ring is a good host for
latency-tolerance techniques because its latencies are mostly pure
delay on an underutilised network.  The extension lets permission
upgrades retire into a store buffer and complete in the background.
"""

from dataclasses import replace

import pytest

from repro.core.config import ProcessorConfig, Protocol, SystemConfig
from repro.core.experiment import build_engine, run_simulation
from repro.memory.states import CacheState
from repro.proc.processor import TraceProcessor
from repro.sim.kernel import Simulator
from repro.traces.records import TraceRecord


def run_trace(records, weak_ordering, num_processors=4, node=0):
    sim = Simulator()
    config = SystemConfig(
        num_processors=num_processors, protocol=Protocol.SNOOPING
    )
    engine = build_engine(sim, config)
    processor = TraceProcessor(
        sim,
        node,
        engine,
        iter(records),
        ProcessorConfig(weak_ordering=weak_ordering),
    )
    sim.spawn(processor.run())
    sim.run()
    return sim, engine, processor


def shared_trace(engine_block_index=0):
    from repro.memory.address import SHARED_BASE

    address = SHARED_BASE + engine_block_index * 16
    return [
        TraceRecord(1, address, False),  # read miss -> RS
        TraceRecord(1, address, True),  # upgrade
        TraceRecord(1, address + 4, True),  # same block, pending
        TraceRecord(1, address, False),  # read of pending block
    ]


def test_weak_ordering_hides_upgrade_stall():
    _, _, blocking = run_trace(shared_trace(), weak_ordering=False)
    _, _, weak = run_trace(shared_trace(), weak_ordering=True)
    assert weak.counters.blocked_ps < blocking.counters.blocked_ps
    assert weak.counters.overlapped_upgrades == 1
    assert weak.counters.buffered_writes == 1
    assert blocking.counters.overlapped_upgrades == 0


def test_background_upgrade_eventually_commits():
    sim, engine, processor = run_trace(shared_trace(), weak_ordering=True)
    sim.run()  # drain background upgrade
    from repro.memory.address import SHARED_BASE

    assert engine.caches[0].state_of(SHARED_BASE) is CacheState.WE
    assert engine.stats.upgrade_latency.count == 1
    assert not processor._pending_upgrades
    engine.check_invariants()


def test_private_upgrades_unaffected():
    records = [
        TraceRecord(1, 0, False),
        TraceRecord(1, 0, True),  # private upgrade: silent either way
    ]
    _, engine, processor = run_trace(records, weak_ordering=True)
    assert processor.counters.overlapped_upgrades == 0
    assert engine.caches[0].state_of(0) is CacheState.WE


def test_weak_ordering_improves_utilization_on_ring():
    base = SystemConfig(num_processors=8, protocol=Protocol.SNOOPING)
    results = {}
    for weak in (False, True):
        config = replace(
            base, processor=replace(base.processor, weak_ordering=weak)
        )
        results[weak] = run_simulation(
            "mp3d", config=config, data_refs=2_000, num_processors=8
        )
    assert (
        results[True].processor_utilization
        >= results[False].processor_utilization
    )
    # The upgrade work still happens, just off the critical path (the
    # count can drift by a few: a buffered upgrade racing an
    # invalidation resolves as a write miss instead).
    assert results[True].stats.upgrade_latency.count == pytest.approx(
        results[False].stats.upgrade_latency.count, rel=0.05
    )


def test_weak_ordering_coherence_preserved_under_contention():
    """Concurrent weakly-ordered writers on the same block still end
    with a single owner."""
    from repro.memory.address import SHARED_BASE

    sim = Simulator()
    config = SystemConfig(num_processors=4, protocol=Protocol.SNOOPING)
    engine = build_engine(sim, config)
    address = SHARED_BASE
    processors = []
    for node in range(4):
        records = [
            TraceRecord(1, address, False),
            TraceRecord(1, address, True),
            TraceRecord(1, address + 8, True),
        ]
        processor = TraceProcessor(
            sim,
            node,
            engine,
            iter(records),
            ProcessorConfig(weak_ordering=True),
        )
        processors.append(processor)
        sim.spawn(processor.run())
    sim.run()
    engine.check_invariants()
    owners = [
        node
        for node in range(4)
        if engine.caches[node].state_of(address) is CacheState.WE
    ]
    assert len(owners) <= 1
