"""Unit and property tests for ring topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ring.slots import FrameLayout
from repro.ring.topology import STAGES_PER_NODE, RingTopology


def baseline(num_nodes: int) -> RingTopology:
    return RingTopology.for_layout(num_nodes, FrameLayout())


def test_paper_eight_node_geometry():
    """Section 4.2: 24 raw stages + 6 padding = 30 stages = 3 frames;
    pure round trip 60 ns at 500 MHz."""
    topology = baseline(8)
    assert topology.raw_stages == 24
    assert topology.total_stages == 30
    assert topology.num_frames == 3
    assert topology.padding_stages == 6
    assert topology.round_trip_cycles() * 2 == 60  # ns at 2 ns/cycle


def test_stages_always_whole_frames():
    for nodes in (2, 3, 5, 8, 16, 31, 64):
        topology = baseline(nodes)
        assert topology.total_stages % topology.frame_stages == 0
        assert topology.total_stages >= nodes * STAGES_PER_NODE


def test_node_stage_positions():
    topology = baseline(8)
    assert [topology.node_stage(i) for i in range(8)] == [
        0, 3, 6, 9, 12, 15, 18, 21
    ]


def test_distance_forward_only():
    topology = baseline(8)
    assert topology.distance(0, 1) == 3
    assert topology.distance(1, 0) == 27  # the long way round
    assert topology.distance(2, 6) == 12


def test_distance_self_is_full_ring():
    topology = baseline(8)
    assert topology.distance(3, 3) == topology.total_stages


def test_distance_closes_the_ring():
    topology = baseline(8)
    for a in range(8):
        for b in range(8):
            if a != b:
                assert (
                    topology.distance(a, b) + topology.distance(b, a)
                    == topology.total_stages
                )


def test_is_on_path():
    topology = baseline(8)
    assert topology.is_on_path(0, 2, 5)
    assert not topology.is_on_path(0, 6, 5)
    assert not topology.is_on_path(0, 0, 5)
    assert not topology.is_on_path(0, 5, 5)
    # Wrapping path: 6 -> 1 passes through 0.
    assert topology.is_on_path(6, 0, 1)


def test_node_bounds_checked():
    topology = baseline(4)
    with pytest.raises(ValueError):
        topology.node_stage(4)
    with pytest.raises(ValueError):
        topology.distance(0, 4)
    with pytest.raises(ValueError):
        topology.distance(-1, 0)


def test_too_few_nodes_rejected():
    with pytest.raises(ValueError):
        RingTopology(num_nodes=1, frame_stages=10)


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        RingTopology(num_nodes=4, frame_stages=0)
    with pytest.raises(ValueError):
        RingTopology(num_nodes=4, frame_stages=10, stages_per_node=0)


@given(st.integers(2, 64))
def test_ring_size_grows_with_nodes(nodes):
    topology = baseline(nodes)
    assert topology.total_stages >= 3 * nodes
    assert topology.total_stages < 3 * nodes + topology.frame_stages


@given(
    nodes=st.integers(2, 32),
    a=st.integers(0, 31),
    b=st.integers(0, 31),
    c=st.integers(0, 31),
)
def test_triangle_closure(nodes, a, b, c):
    """Any closed three-hop circuit wraps the ring an integer number
    of times -- the property the directory protocol's traversal
    classification relies on."""
    a, b, c = a % nodes, b % nodes, c % nodes
    if len({a, b, c}) != 3:
        return
    topology = baseline(nodes)
    total = (
        topology.distance(a, b)
        + topology.distance(b, c)
        + topology.distance(c, a)
    )
    assert total % topology.total_stages == 0
    assert total in (topology.total_stages, 2 * topology.total_stages)
