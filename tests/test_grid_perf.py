"""Scale acceptance for the grid engine: 10^5 points in one pass.

The engine's reason to exist is paper-scale design surfaces; this test
pins the headline: build + solve a 100,000-point snooping-ring grid in
under five seconds of wall clock, with every point converged and the
warm-start chains still matching the scalar oracle (sampled -- the
exhaustive check lives in test_grid_models.py at smaller scale).
"""

from __future__ import annotations

import importlib.util
import pathlib
import time
from dataclasses import replace

import pytest

np = pytest.importorskip("numpy")

from repro.core.config import Protocol, SystemConfig
from repro.models import grid as grid_engine
from repro.models.ring_snooping import SnoopingRingModel

pytestmark = pytest.mark.skipif(
    not grid_engine.grid_available(), reason="grid engine disabled"
)


def _make_inputs():
    spec = importlib.util.spec_from_file_location(
        "grid_oracle", pathlib.Path(__file__).parent / "test_grid_models.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module._make_inputs, module._assert_matches


def test_hundred_thousand_point_surface_under_five_seconds():
    make_inputs, assert_matches = _make_inputs()
    protocol = Protocol.SNOOPING
    config = SystemConfig(num_processors=16, protocol=protocol)
    inputs = make_inputs(protocol, 16)
    clocks = list(range(1_000, 11_000, 100))  # 100 ring clocks
    accesses = list(range(60_000, 310_000, 5_000))  # 50 memory speeds
    cycles = [float(c) for c in range(1, 21)]  # the paper's 20-point axis

    started = time.perf_counter()
    grid = grid_engine.ModelGrid.from_product(
        "ring_snooping",
        config,
        inputs,
        cycles_ns=cycles,
        parameters={
            "ring_clock_ps": clocks,
            "memory_access_ps": accesses,
        },
    )
    solution = grid_engine.solve_grid(grid)
    wall_s = time.perf_counter() - started

    assert solution.size == len(clocks) * len(accesses) * len(cycles)
    assert solution.size == 100_000
    assert solution.n_converged == solution.size
    assert solution.n_failed == 0
    assert wall_s < 5.0, (
        f"100k-point grid took {wall_s:.2f}s (budget 5s)"
    )

    # Sample three warm-start chains across the surface and hold them
    # to the scalar oracle (the chains warm-start identically, so the
    # match is exact, well inside the 1e-9 contract).
    n_cycles = len(cycles)
    for chain in (0, solution.size // n_cycles // 2,
                  solution.size // n_cycles - 1):
        clock_ps = clocks[chain // len(accesses)]
        access_ps = accesses[chain % len(accesses)]
        variant = replace(
            config,
            ring=replace(config.ring, clock_ps=clock_ps),
            memory=replace(config.memory, access_ps=access_ps),
        )
        oracle = SnoopingRingModel(variant, inputs).sweep(cycles)
        for position, point in enumerate(oracle.points):
            assert_matches(
                solution.operating_point(chain * n_cycles + position),
                point,
                where=f"chain {chain} position {position}",
            )
