"""Symmetry reduction: the canonicalizer must be a true symmetry.

Two properties carry the whole reduction argument:

* **Orbit collapse**: relabeling a state by any group element must not
  change its canonical form (``canonical(g . s) == canonical(s)``).
* **Reachability transport**: relabeling a *script* by a node
  permutation reaches the relabeled state, so (for single-reference
  steps, which drain to a timing-independent quiescent state) the
  canonical fingerprint of the reached state is permutation-invariant.

If either failed, the reduced search could merge states the protocol
distinguishes (unsound) or split an orbit (losing the reduction).
"""

from __future__ import annotations

import itertools

import pytest

from repro.check.state import EngineHarness, Ref, StepSpec
from repro.check.symmetry import (
    SYMMETRY_MODES,
    CanonicalContext,
    cluster_permutations,
    encode_state,
    permutation_group,
    relabel_view,
    state_fingerprint,
)
from repro.sim.rng import DeterministicRng

PROTOCOLS = ("snooping", "directory", "linkedlist", "bus")


def permute_snapshot(state, node_perm, line_perm):
    """Apply a group element to a raw ``AbstractState`` snapshot."""
    caches, views = state
    return (
        tuple(
            sorted(
                (node_perm[node], line_perm[line], name)
                for node, line, name in caches
            )
        ),
        tuple(
            sorted(
                (line_perm[line], raw_relabel(view, node_perm))
                for line, view in views
            )
        ),
    )


def raw_relabel(view, node_perm):
    """Relabel a view's node ids while keeping the raw (None) encoding."""
    tag = view[0]
    if tag in ("dirty-bit", "owner"):
        _, dirty, owner = view
        return (tag, dirty, None if owner is None else node_perm[owner])
    if tag == "full-map":
        _, dirty, sharers = view
        return (tag, dirty, tuple(sorted(node_perm[s] for s in sharers)))
    _, dirty, chain = view
    return (tag, dirty, tuple(node_perm[n] for n in chain))


def random_scripts(rng, nodes, lines, count, length):
    for _ in range(count):
        yield [
            StepSpec(
                (
                    Ref(
                        rng.randint(0, nodes - 1),
                        rng.randint(0, lines - 1),
                        rng.bernoulli(0.4),
                    ),
                )
            )
            for _ in range(length)
        ]


# ----------------------------------------------------------------------
# Group construction
# ----------------------------------------------------------------------
def test_full_group_is_the_product_of_symmetric_groups():
    group = permutation_group(3, 2, "full")
    assert len(group) == 6 * 2  # 3! node perms x 2! line perms
    assert len(set(group)) == len(group)


def test_identity_group_for_symmetry_none():
    group = permutation_group(3, 2, "none")
    assert group == (((0, 1, 2), (0, 1)),)


def test_unknown_symmetry_mode_rejected():
    with pytest.raises(ValueError):
        permutation_group(2, 1, "partial")
    assert "partial" not in SYMMETRY_MODES


def test_cluster_permutations_respect_the_partition():
    perms = cluster_permutations(4, 2)
    # S_2 wr S_2: 2 inner x 2 inner x 2 outer = 8 elements (vs 4! = 24).
    assert len(perms) == 8
    assert len(set(perms)) == 8
    for perm in perms:
        # Nodes 0,1 stay together (land in one cluster), same for 2,3.
        assert {perm[0] // 2} == {perm[1] // 2}
        assert {perm[2] // 2} == {perm[3] // 2}


def test_cluster_permutations_reject_uneven_split():
    with pytest.raises(ValueError):
        cluster_permutations(5, 2)


def test_hierarchical_context_uses_the_cluster_subgroup():
    context = CanonicalContext("hierarchical", 4, 2, "full")
    assert context.group_size == 8 * 2  # wreath product x 2! lines
    flat = CanonicalContext("snooping", 4, 2, "full")
    assert flat.group_size == 24 * 2


# ----------------------------------------------------------------------
# View relabeling
# ----------------------------------------------------------------------
def test_relabel_view_encodes_missing_owner_as_minus_one():
    assert relabel_view(("dirty-bit", True, None), (1, 0)) == (
        "dirty-bit",
        True,
        -1,
    )
    assert relabel_view(("owner", False, 0), (1, 0)) == ("owner", False, 1)


def test_relabel_view_sorts_full_map_sharers():
    assert relabel_view(("full-map", False, (0, 2)), (2, 1, 0)) == (
        "full-map",
        False,
        (0, 2),
    )


def test_relabel_view_preserves_list_order():
    # The sharing chain is ordered head-first; relabeling must not sort.
    assert relabel_view(("list", True, (2, 0, 1)), (1, 2, 0)) == (
        "list",
        True,
        (0, 1, 2),
    )


def test_relabel_view_rejects_unknown_tag():
    with pytest.raises(ValueError):
        relabel_view(("bitmap", False, ()), (0, 1))


# ----------------------------------------------------------------------
# The core soundness property: canonical is orbit-invariant
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_canonical_form_is_invariant_over_the_orbit(protocol):
    nodes, lines = 3, 2
    context = CanonicalContext(protocol, nodes, lines, "full")
    rng = DeterministicRng(2026)
    for script in random_scripts(rng, nodes, lines, count=6, length=4):
        harness = EngineHarness(protocol, nodes, lines)
        for step in script:
            harness.apply(step)
        state = harness.snapshot()
        reference = context.canonical(state)
        for node_perm, line_perm in context.group:
            permuted = permute_snapshot(state, node_perm, line_perm)
            assert context.canonical(permuted) == reference
        assert state_fingerprint(reference) == context.fingerprint(state)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_relabeled_scripts_reach_the_same_canonical_state(protocol):
    """Transport: run g(script), land in the canonical class of g(state)."""
    nodes, lines = 3, 1
    context = CanonicalContext(protocol, nodes, lines, "full")
    rng = DeterministicRng(517)
    for script in random_scripts(rng, nodes, lines, count=4, length=4):
        baseline = EngineHarness(protocol, nodes, lines)
        for step in script:
            baseline.apply(step)
        want = context.fingerprint(baseline.snapshot())
        for node_perm in itertools.permutations(range(nodes)):
            relabeled = EngineHarness(protocol, nodes, lines)
            for step in script:
                relabeled.apply(
                    StepSpec(
                        tuple(
                            Ref(node_perm[ref.node], ref.line, ref.is_write)
                            for ref in step.refs
                        )
                    )
                )
            assert context.fingerprint(relabeled.snapshot()) == want


def test_identity_encoding_is_injective_on_distinct_states():
    harness = EngineHarness("snooping", 2, 1)
    cold = harness.snapshot()
    harness.apply(StepSpec((Ref(0, 0, True),)))
    warm = harness.snapshot()
    identity = ((0, 1), (0,))
    assert encode_state(cold, *identity, 2, 1) != encode_state(
        warm, *identity, 2, 1
    )


def test_fingerprints_are_stable_hex_digests():
    context = CanonicalContext("snooping", 2, 1, "full")
    state = EngineHarness("snooping", 2, 1).snapshot()
    first = context.fingerprint(state)
    second = CanonicalContext("snooping", 2, 1, "full").fingerprint(state)
    assert first == second
    assert len(first) == 64 and int(first, 16) >= 0
