"""Unit tests for the metric accumulators."""

import pytest

from repro.core.metrics import (
    CoherenceStats,
    LatencyAccumulator,
    MissClass,
    TraversalHistogram,
)


# ----------------------------------------------------------------------
# LatencyAccumulator
# ----------------------------------------------------------------------
def test_latency_accumulator_empty():
    acc = LatencyAccumulator()
    assert acc.count == 0
    assert acc.mean_ps == 0.0
    assert acc.min_ps is None and acc.max_ps is None


def test_latency_accumulator_records():
    acc = LatencyAccumulator()
    for value in (10_000, 30_000, 20_000):
        acc.record(value)
    assert acc.count == 3
    assert acc.mean_ps == pytest.approx(20_000)
    assert acc.mean_ns == pytest.approx(20.0)
    assert acc.min_ps == 10_000
    assert acc.max_ps == 30_000


def test_latency_accumulator_merge():
    a = LatencyAccumulator()
    b = LatencyAccumulator()
    a.record(5_000)
    b.record(15_000)
    b.record(25_000)
    a.merge(b)
    assert a.count == 3
    assert a.min_ps == 5_000
    assert a.max_ps == 25_000


def test_merge_empty_keeps_bounds():
    a = LatencyAccumulator()
    a.record(5_000)
    a.merge(LatencyAccumulator())
    assert a.min_ps == 5_000 and a.max_ps == 5_000


# ----------------------------------------------------------------------
# TraversalHistogram
# ----------------------------------------------------------------------
def test_histogram_paper_row():
    histogram = TraversalHistogram()
    for traversals in (1, 1, 1, 2, 3, 5):
        histogram.record(traversals)
    row = histogram.as_paper_row()
    assert row["1"] == pytest.approx(50.0)
    assert row["2"] == pytest.approx(100.0 / 6)
    assert row["3+"] == pytest.approx(200.0 / 6)
    assert histogram.total == 6


def test_histogram_empty_percentages():
    histogram = TraversalHistogram()
    assert histogram.percentage(1) == 0.0
    assert histogram.percentage_at_least(3) == 0.0


def test_histogram_rejects_negative():
    histogram = TraversalHistogram()
    with pytest.raises(ValueError):
        histogram.record(-1)


# ----------------------------------------------------------------------
# MissClass semantics
# ----------------------------------------------------------------------
def test_miss_class_shared_and_remote_flags():
    assert not MissClass.PRIVATE.is_shared
    assert MissClass.LOCAL_CLEAN.is_shared
    assert not MissClass.LOCAL_CLEAN.is_remote
    for klass in (
        MissClass.REMOTE_CLEAN,
        MissClass.REMOTE_DIRTY,
        MissClass.DIRTY_ONE_CYCLE,
        MissClass.TWO_CYCLE,
    ):
        assert klass.is_shared and klass.is_remote


# ----------------------------------------------------------------------
# CoherenceStats
# ----------------------------------------------------------------------
def test_record_miss_routes_latency_and_traversals():
    stats = CoherenceStats()
    stats.record_miss(MissClass.REMOTE_CLEAN, 200_000, traversals=1)
    stats.record_miss(MissClass.TWO_CYCLE, 400_000, traversals=2)
    stats.record_miss(MissClass.PRIVATE, 140_000)
    assert stats.total_misses() == 3
    assert stats.shared_misses() == 2
    assert stats.remote_misses() == 2
    assert stats.miss_traversals.total == 2


def test_local_misses_not_in_traversal_histogram():
    stats = CoherenceStats()
    stats.record_miss(MissClass.LOCAL_CLEAN, 140_000, traversals=1)
    assert stats.miss_traversals.total == 0


def test_record_upgrade_sharers_split():
    stats = CoherenceStats()
    stats.record_upgrade(100_000, traversals=1, had_sharers=True)
    stats.record_upgrade(100_000, traversals=None, had_sharers=False)
    assert stats.upgrades_with_sharers == 1
    assert stats.upgrades_without_sharers == 1
    assert stats.upgrade_traversals.total == 1


def test_mean_latency_selectors():
    stats = CoherenceStats()
    stats.record_miss(MissClass.PRIVATE, 100_000)
    stats.record_miss(MissClass.REMOTE_CLEAN, 300_000, traversals=1)
    assert stats.mean_latency_ps() == pytest.approx(200_000)
    assert stats.shared_miss_latency_ps() == pytest.approx(300_000)
    assert stats.mean_latency_ps([MissClass.PRIVATE]) == pytest.approx(100_000)


def test_miss_class_percentages_over_remote_only():
    stats = CoherenceStats()
    stats.record_miss(MissClass.REMOTE_CLEAN, 1, traversals=1)
    stats.record_miss(MissClass.REMOTE_CLEAN, 1, traversals=1)
    stats.record_miss(MissClass.TWO_CYCLE, 1, traversals=2)
    stats.record_miss(MissClass.PRIVATE, 1)
    percentages = stats.miss_class_percentages()
    assert percentages[MissClass.REMOTE_CLEAN] == pytest.approx(200.0 / 3)
    assert percentages[MissClass.TWO_CYCLE] == pytest.approx(100.0 / 3)
    assert MissClass.PRIVATE not in percentages


def test_miss_class_percentages_empty():
    stats = CoherenceStats()
    percentages = stats.miss_class_percentages()
    assert all(value == 0.0 for value in percentages.values())
