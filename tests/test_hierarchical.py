"""Protocol tests for the hierarchical (two-level) ring engine."""

import pytest
from dataclasses import replace

from repro.core.config import Protocol, SystemConfig
from repro.core.experiment import build_engine, run_simulation
from repro.memory.states import CacheState
from repro.sim.kernel import Simulator
from tests.conftest import run_reference


def make_hier(num_processors=8, clusters=2):
    sim = Simulator()
    base = SystemConfig(
        num_processors=num_processors, protocol=Protocol.HIERARCHICAL
    )
    config = replace(base, ring=replace(base.ring, clusters=clusters))
    return sim, build_engine(sim, config)


def find_address(engine, predicate, start=0):
    for index in range(start, start + 50_000):
        address = engine.address_map.shared_block_address(index)
        if predicate(address):
            return address
    raise AssertionError("no matching shared block found")


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_geometry():
    _, engine = make_hier(8, 2)
    assert engine.per_cluster == 4
    assert engine.cluster_of(0) == 0
    assert engine.cluster_of(7) == 1
    assert engine.local_position(5) == 1
    assert engine.iri_position == 4
    # Local rings carry nodes + IRI; global ring carries the IRIs.
    assert engine.local_topology.num_nodes == 5
    assert engine.global_topology.num_nodes == 2


def test_uneven_clusters_rejected():
    with pytest.raises(ValueError):
        make_hier(num_processors=8, clusters=3)


def test_single_cluster_rejected():
    with pytest.raises(ValueError):
        make_hier(num_processors=8, clusters=1)


# ----------------------------------------------------------------------
# Coherence behaviour
# ----------------------------------------------------------------------
def test_cold_read_and_write(setup=None):
    sim, engine = make_hier()
    address = engine.address_map.shared_block_address(0)
    run_reference(sim, engine, 0, address, False)
    assert engine.caches[0].state_of(address) is CacheState.RS
    run_reference(sim, engine, 0, address, True)
    assert engine.caches[0].state_of(address) is CacheState.WE
    engine.check_invariants()


def test_cross_cluster_write_invalidates_everywhere():
    sim, engine = make_hier(8, 2)
    address = engine.address_map.shared_block_address(0)
    for node in (0, 3, 4, 7):  # readers in both clusters
        run_reference(sim, engine, node, address, False)
    run_reference(sim, engine, 1, address, True)
    sim.run()
    for node in (0, 3, 4, 7):
        assert engine.caches[node].state_of(address) is CacheState.INV
    assert engine.caches[1].state_of(address) is CacheState.WE
    engine.check_invariants()


def test_cross_cluster_dirty_read_downgrades():
    sim, engine = make_hier(8, 2)
    address = engine.address_map.shared_block_address(0)
    run_reference(sim, engine, 0, address, True)  # cluster 0 owns
    run_reference(sim, engine, 6, address, False)  # cluster 1 reads
    sim.run()
    assert engine.caches[0].state_of(address) is CacheState.RS
    assert engine.caches[6].state_of(address) is CacheState.RS
    block = engine.address_map.block_of(address)
    assert not engine.dirty_bits.is_dirty(block)
    engine.check_invariants()


def test_local_transaction_cheaper_than_remote():
    sim, engine = make_hier(8, 2)
    # A block homed at node 1 (cluster 0): local for node 0, remote
    # for node 4.
    address = find_address(
        engine,
        lambda a: engine.address_map.home_of(a) == 1,
    )
    local_latency = run_reference(sim, engine, 0, address, False)

    sim2, engine2 = make_hier(8, 2)
    remote_latency = run_reference(sim2, engine2, 4, address, False)
    assert local_latency < remote_latency


def test_locality_counters():
    sim, engine = make_hier(8, 2)
    address_local = find_address(
        engine, lambda a: engine.address_map.home_of(a) == 1
    )
    address_remote = find_address(
        engine, lambda a: engine.cluster_of(engine.address_map.home_of(a)) == 1
    )
    run_reference(sim, engine, 0, address_local, False)
    run_reference(sim, engine, 0, address_remote, False)
    assert engine.local_transactions == 1
    assert engine.global_transactions == 1
    assert engine.locality_fraction == pytest.approx(0.5)


def test_cross_cluster_writeback_round_trip():
    sim, engine = make_hier(8, 2)
    num_lines = engine.caches[0].num_lines
    address = find_address(
        engine, lambda a: engine.cluster_of(engine.address_map.home_of(a)) == 1
    )
    conflict_index = (
        engine.address_map.block_of(address)
        - engine.address_map.block_of(engine.address_map.shared_block_address(0))
        + num_lines
    )
    conflict = engine.address_map.shared_block_address(conflict_index)
    run_reference(sim, engine, 0, address, True)
    run_reference(sim, engine, 0, conflict, False)
    sim.run()
    block = engine.address_map.block_of(address)
    assert not engine.dirty_bits.is_dirty(block)
    engine.check_invariants()


def test_full_simulation_smoke_and_invariants():
    result = run_simulation(
        "mp3d", num_processors=8, protocol=Protocol.HIERARCHICAL,
        data_refs=1_000,
    )
    assert 0.0 < result.processor_utilization <= 1.0
    assert result.shared_miss_latency_ns > 0.0


def test_hierarchy_beats_flat_ring_at_64p():
    """The reason the KSR1/Hector hierarchies were built: shorter
    segments cut latency even for uniform traffic."""
    flat = run_simulation(
        "fft", num_processors=64, protocol=Protocol.SNOOPING,
        data_refs=1_200,
    )
    base = SystemConfig(num_processors=64, protocol=Protocol.HIERARCHICAL)
    config = replace(base, ring=replace(base.ring, clusters=8))
    hierarchical = run_simulation(
        "fft", config=config, data_refs=1_200, num_processors=64
    )
    assert (
        hierarchical.shared_miss_latency_ns < flat.shared_miss_latency_ns
    )
    assert (
        hierarchical.processor_utilization
        >= flat.processor_utilization - 0.01
    )
