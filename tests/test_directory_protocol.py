"""Protocol tests for the full-map directory slotted-ring engine."""

import pytest

from repro.core.config import Protocol
from repro.core.metrics import MissClass
from repro.memory.states import CacheState
from tests.conftest import make_engine, run_reference
from tests.test_snooping import local_shared_address, remote_shared_address


@pytest.fixture
def setup():
    sim, engine = make_engine(Protocol.DIRECTORY)
    return sim, engine


def shared_address(engine, index=0):
    return engine.address_map.shared_block_address(index)


def directory_entry(engine, address):
    return engine.directory_for(address).entry(
        engine.address_map.block_of(address)
    )


# ----------------------------------------------------------------------
# Directory bookkeeping
# ----------------------------------------------------------------------
def test_read_registers_sharer(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 0, address, False)
    entry = directory_entry(engine, address)
    assert entry.sharers == {0}
    assert not entry.dirty


def test_multiple_readers_accumulate_presence_bits(setup):
    sim, engine = setup
    address = shared_address(engine)
    for node in range(4):
        run_reference(sim, engine, node, address, False)
    assert directory_entry(engine, address).sharers == {0, 1, 2, 3}


def test_write_sets_exclusive(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 2, address, True)
    entry = directory_entry(engine, address)
    assert entry.dirty
    assert entry.owner == 2


def test_write_after_sharing_invalidates_precisely(setup):
    sim, engine = setup
    address = shared_address(engine)
    for node in range(3):
        run_reference(sim, engine, node, address, False)
    run_reference(sim, engine, 3, address, True)
    entry = directory_entry(engine, address)
    assert entry.owner == 3
    for node in range(3):
        assert engine.caches[node].state_of(address) is CacheState.INV
    engine.check_invariants()


def test_read_of_dirty_downgrades_and_reshapes_directory(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 1, address, True)
    run_reference(sim, engine, 3, address, False)
    entry = directory_entry(engine, address)
    assert not entry.dirty
    assert entry.sharers == {1, 3}
    assert engine.caches[1].state_of(address) is CacheState.RS


def test_upgrade_with_sharers_multicasts(setup):
    sim, engine = setup
    address = shared_address(engine)
    for node in range(4):
        run_reference(sim, engine, node, address, False)
    broadcasts_before = engine.stats.broadcast_probes
    run_reference(sim, engine, 0, address, True)
    assert engine.stats.broadcast_probes == broadcasts_before + 1
    assert engine.stats.upgrades_with_sharers == 1
    for node in (1, 2, 3):
        assert engine.caches[node].state_of(address) is CacheState.INV
    engine.check_invariants()


def test_upgrade_without_sharers_skips_multicast(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 0, address, False)
    broadcasts_before = engine.stats.broadcast_probes
    run_reference(sim, engine, 0, address, True)
    assert engine.stats.broadcast_probes == broadcasts_before
    assert engine.stats.upgrades_without_sharers == 1


# ----------------------------------------------------------------------
# Miss classification (Figure 5 semantics)
# ----------------------------------------------------------------------
def test_remote_clean_is_one_traversal(setup):
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    run_reference(sim, engine, 0, address, False)
    counts = engine.stats.counts_by_class()
    assert counts[MissClass.REMOTE_CLEAN] == 1
    assert engine.stats.miss_traversals.as_paper_row()["1"] == 100.0


def test_local_clean_uses_no_ring(setup):
    sim, engine = setup
    node = 1
    address = local_shared_address(engine, node)
    run_reference(sim, engine, node, address, False)
    assert engine.stats.probes_sent == 0
    assert engine.stats.counts_by_class()[MissClass.LOCAL_CLEAN] == 1


def test_dirty_miss_classification_matches_geometry(setup):
    """A dirty miss is 1-cycle when the dirty node is NOT between the
    requester and the home, 2-cycle when it is (paper Fig. 2.b)."""
    sim, engine = setup
    address = shared_address(engine)
    home = engine.address_map.home_of(address)
    # Pick an owner and requester relative to the home.
    others = [n for n in range(4) if n != home]
    owner, requester = others[0], others[1]
    run_reference(sim, engine, owner, address, True)
    run_reference(sim, engine, requester, address, False)
    counts = engine.stats.counts_by_class()
    expected_two_cycle = engine.topology.is_on_path(requester, owner, home)
    if expected_two_cycle:
        assert counts[MissClass.TWO_CYCLE] == 1
    else:
        assert counts[MissClass.DIRTY_ONE_CYCLE] == 1


def test_write_with_sharers_is_two_cycle_when_remote(setup):
    sim, engine = setup
    address = remote_shared_address(engine, 3)
    home = engine.address_map.home_of(address)
    readers = [n for n in range(4) if n not in (3,)]
    for node in readers:
        run_reference(sim, engine, node, address, False)
    run_reference(sim, engine, 3, address, True)
    counts = engine.stats.counts_by_class()
    assert counts[MissClass.TWO_CYCLE] == 1


def test_traversal_histogram_never_exceeds_two(setup):
    """Full-map transactions need at most 2 traversals (Table 1 shows
    0.0% at '3 or more')."""
    sim, engine = setup
    addresses = [shared_address(engine, i) for i in range(6)]
    for round_number in range(3):
        for node in range(4):
            for address in addresses:
                run_reference(
                    sim, engine, node, address, (node + round_number) % 3 == 0
                )
    assert engine.stats.miss_traversals.percentage_at_least(3) == 0.0
    assert engine.stats.upgrade_traversals.percentage_at_least(3) == 0.0
    engine.check_invariants()


# ----------------------------------------------------------------------
# Latency ordering
# ----------------------------------------------------------------------
def test_dirty_one_cycle_slower_than_clean_one_cycle(setup):
    """Three hops cost more than two at equal traversal count."""
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    clean_latency = run_reference(sim, engine, 0, address, False)

    sim2, engine2 = make_engine(Protocol.DIRECTORY)
    address2 = remote_shared_address(engine2, 0)
    home2 = engine2.address_map.home_of(address2)
    owner_candidates = [
        n
        for n in range(4)
        if n not in (0, home2)
        and not engine2.topology.is_on_path(0, n, home2)
    ]
    if not owner_candidates:
        pytest.skip("no 1-cycle dirty geometry available at 4 nodes")
    run_reference(sim2, engine2, owner_candidates[0], address2, True)
    dirty_latency = run_reference(sim2, engine2, 0, address2, False)
    assert dirty_latency > clean_latency


def test_writeback_clears_directory(setup):
    sim, engine = setup
    num_lines = engine.caches[0].num_lines
    addr_a = shared_address(engine, 0)
    addr_b = engine.address_map.shared_block_address(num_lines)
    run_reference(sim, engine, 0, addr_a, True)
    run_reference(sim, engine, 0, addr_b, False)
    sim.run()
    block_a = engine.address_map.block_of(addr_a)
    entry = engine.directory_for(addr_a).peek(block_a)
    assert entry is None or not entry.dirty


def test_reclaim_from_buffer_preserves_directory(setup):
    sim, engine = setup
    num_lines = engine.caches[0].num_lines
    addr_a = shared_address(engine, 0)
    addr_b = engine.address_map.shared_block_address(num_lines)
    run_reference(sim, engine, 0, addr_a, True)
    run_reference(sim, engine, 0, addr_b, False)
    run_reference(sim, engine, 0, addr_a, True)  # reclaim
    sim.run()
    entry = directory_entry(engine, addr_a)
    assert entry.dirty
    assert entry.owner == 0
    assert engine.caches[0].state_of(addr_a) is CacheState.WE
    engine.check_invariants()


def test_stale_presence_bits_after_silent_rs_eviction(setup):
    """RS replacements do not notify the home; the stale presence bit
    is tolerated (invalidation of an absent copy is a no-op)."""
    sim, engine = setup
    num_lines = engine.caches[1].num_lines
    addr_a = shared_address(engine, 0)
    addr_b = engine.address_map.shared_block_address(num_lines)
    run_reference(sim, engine, 1, addr_a, False)
    run_reference(sim, engine, 1, addr_b, False)  # silently evicts addr_a
    assert 1 in directory_entry(engine, addr_a).sharers  # stale
    run_reference(sim, engine, 2, addr_a, True)  # multicast covers node 1
    sim.run()
    assert engine.caches[1].state_of(addr_a) is CacheState.INV
    assert directory_entry(engine, addr_a).owner == 2
    engine.check_invariants()


def test_private_misses_skip_directory(setup):
    sim, engine = setup
    address = engine.address_map.private_block_address(2, 11)
    run_reference(sim, engine, 2, address, True)
    assert engine.stats.probes_sent == 0
    assert engine.stats.counts_by_class()[MissClass.PRIVATE] == 1
