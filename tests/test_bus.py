"""Protocol and timing tests for the split-transaction bus system."""

import pytest

from repro.core.config import Protocol
from repro.core.metrics import MissClass
from repro.memory.states import CacheState
from tests.conftest import make_engine, run_reference
from tests.test_snooping import local_shared_address, remote_shared_address


@pytest.fixture
def setup():
    sim, engine = make_engine(Protocol.BUS)
    return sim, engine


def shared_address(engine, index=0):
    return engine.address_map.shared_block_address(index)


def test_cold_read_installs_rs(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 0, address, False)
    assert engine.caches[0].state_of(address) is CacheState.RS


def test_remote_miss_minimum_six_bus_cycles(setup):
    """Paper section 4.3: a remote miss needs at least six bus cycles
    plus the memory fetch, excluding arbitration."""
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    latency = run_reference(sim, engine, 0, address, False)
    bus_clock = engine.config.bus.clock_ps
    minimum = 6 * bus_clock + engine.config.memory.access_ps
    assert latency >= minimum
    assert latency <= minimum + 4 * bus_clock  # uncontended slack


def test_local_clean_read_skips_bus(setup):
    sim, engine = setup
    node = 1
    address = local_shared_address(engine, node)
    run_reference(sim, engine, node, address, False)
    assert engine.bus.grants == 0
    assert engine.stats.counts_by_class()[MissClass.LOCAL_CLEAN] == 1


def test_remote_miss_uses_two_bus_grants(setup):
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    run_reference(sim, engine, 0, address, False)
    assert engine.bus.grants == 2  # request phase + reply phase


def test_upgrade_uses_single_grant(setup):
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    run_reference(sim, engine, 0, address, False)
    grants_before = engine.bus.grants
    run_reference(sim, engine, 0, address, True)
    assert engine.bus.grants == grants_before + 1
    assert engine.stats.upgrade_latency.count == 1


def test_write_invalidates_sharers_at_request_phase(setup):
    sim, engine = setup
    address = shared_address(engine)
    for node in range(3):
        run_reference(sim, engine, node, address, False)
    run_reference(sim, engine, 3, address, True)
    for node in range(3):
        assert engine.caches[node].state_of(address) is CacheState.INV
    assert engine.caches[3].state_of(address) is CacheState.WE
    engine.check_invariants()


def test_dirty_miss_served_by_owner_cache(setup):
    sim, engine = setup
    address = shared_address(engine)
    run_reference(sim, engine, 1, address, True)
    latency = run_reference(sim, engine, 3, address, False)
    assert engine.stats.counts_by_class()[MissClass.REMOTE_DIRTY] == 1
    assert engine.caches[1].state_of(address) is CacheState.RS
    # Cache response replaces the memory access in the latency.
    assert latency >= 6 * engine.config.bus.clock_ps + engine.config.memory.cache_response_ps


def test_bus_serialises_concurrent_misses(setup):
    """Two simultaneous remote misses cannot overlap their bus phases."""
    sim, engine = setup
    address_a = remote_shared_address(engine, 0)
    address_b = remote_shared_address(
        engine, 1, index_start=1_000
    )
    assert engine.address_map.block_of(address_a) != engine.address_map.block_of(address_b)
    results = {}

    def body(node, address):
        from repro.memory.cache import AccessOutcome

        outcome = engine.caches[node].classify(address, False)
        latency = yield from engine.miss(node, address, outcome)
        results[node] = latency

    sim.spawn(body(0, address_a))
    sim.spawn(body(1, address_b))
    sim.run()
    # Four bus grants total; busy time is the sum of all phases.
    assert engine.bus.grants == 4
    expected_busy = 2 * (
        engine.config.bus.request_cycles + engine.config.bus.reply_cycles
    ) * engine.config.bus.clock_ps
    assert engine.bus.busy_time == expected_busy


def test_writeback_uses_bus(setup):
    sim, engine = setup
    num_lines = engine.caches[0].num_lines
    addr_a = remote_shared_address(engine, 0)
    conflict_index = (
        engine.address_map.block_of(addr_a)
        - engine.address_map.block_of(engine.address_map.shared_block_address(0))
        + num_lines
    )
    addr_b = engine.address_map.shared_block_address(conflict_index)
    run_reference(sim, engine, 0, addr_a, True)
    grants_before = engine.bus.grants
    run_reference(sim, engine, 0, addr_b, False)
    sim.run()
    block_a = engine.address_map.block_of(addr_a)
    assert not engine.dirty_bits.is_dirty(block_a)
    assert engine.bus.grants > grants_before


def test_private_traffic_never_touches_bus(setup):
    sim, engine = setup
    address = engine.address_map.private_block_address(2, 9)
    run_reference(sim, engine, 2, address, True)
    run_reference(sim, engine, 2, address, False)
    assert engine.bus.grants == 0


def test_bus_utilization_reported(setup):
    sim, engine = setup
    address = remote_shared_address(engine, 0)
    run_reference(sim, engine, 0, address, False)
    assert 0.0 < engine.bus_utilization(sim.now) <= 1.0


def test_faster_bus_lowers_latency():
    from dataclasses import replace

    from repro.core.config import SystemConfig
    from repro.core.experiment import build_engine
    from repro.sim.kernel import Simulator

    latencies = {}
    for clock_ps in (20_000, 10_000):
        sim = Simulator()
        base = SystemConfig(num_processors=4, protocol=Protocol.BUS)
        config = replace(base, bus=replace(base.bus, clock_ps=clock_ps))
        engine = build_engine(sim, config)
        address = remote_shared_address(engine, 0)
        latencies[clock_ps] = run_reference(sim, engine, 0, address, False)
    assert latencies[10_000] < latencies[20_000]


def test_invariants_after_mixed_traffic(setup):
    sim, engine = setup
    addresses = [shared_address(engine, i) for i in range(5)]
    for round_number in range(3):
        for node in range(4):
            for address in addresses:
                run_reference(
                    sim, engine, node, address, (node + round_number) % 2 == 0
                )
    sim.run()
    engine.check_invariants()
