"""Tests for result containers and the figure-family orchestration."""

import pytest

from repro.core.config import Protocol
from repro.core.metrics import MissClass
from repro.core.results import OperatingPoint, SweepResult
from repro.core.sweep import (
    FIG3_BENCHMARKS,
    FIG4_BENCHMARKS,
    FIG6_BENCHMARKS,
)
from tests.test_models import make_inputs


# ----------------------------------------------------------------------
# ModelInputs helpers
# ----------------------------------------------------------------------
def test_model_inputs_totals():
    inputs = make_inputs()
    assert inputs.f_upgrade == pytest.approx(0.003)
    assert inputs.f_miss_total() == pytest.approx(
        sum(inputs.f_miss.values())
    )
    shared = inputs.f_miss_shared()
    assert shared == pytest.approx(
        inputs.f_miss_total() - inputs.f_miss[MissClass.PRIVATE]
    )


def test_model_inputs_defaults_for_extension_fields():
    inputs = make_inputs()
    assert inputs.f_forwards == 0.0
    assert inputs.mean_miss_traversals == 0.0
    assert inputs.mean_upgrade_traversals == 0.0


# ----------------------------------------------------------------------
# OperatingPoint / SweepResult
# ----------------------------------------------------------------------
def make_point(cycle_ns, utilization):
    return OperatingPoint(
        processor_cycle_ns=cycle_ns,
        processor_utilization=utilization,
        network_utilization=0.2,
        shared_miss_latency_ns=300.0,
        upgrade_latency_ns=100.0,
        time_per_instruction_ps=cycle_ns * 1000 / utilization,
    )


def test_operating_point_mips():
    assert make_point(20.0, 0.8).mips == pytest.approx(50.0)
    assert make_point(1.0, 0.5).mips == pytest.approx(1000.0)


def test_sweep_series_and_cycles():
    sweep = SweepResult("mp3d", Protocol.SNOOPING, "label")
    for cycle in (20.0, 10.0, 1.0):
        sweep.points.append(make_point(cycle, cycle / 25.0))
    assert sweep.cycles_ns() == [20.0, 10.0, 1.0]
    assert sweep.series("processor_utilization") == [0.8, 0.4, 0.04]


def test_sweep_at_cycle_empty_raises():
    sweep = SweepResult("mp3d", Protocol.SNOOPING, "label")
    with pytest.raises(ValueError):
        sweep.at_cycle(5.0)


# ----------------------------------------------------------------------
# Figure-family constants
# ----------------------------------------------------------------------
def test_fig3_covers_splash_grid():
    assert len(FIG3_BENCHMARKS) == 9
    names = {name for name, _ in FIG3_BENCHMARKS}
    sizes = {procs for _, procs in FIG3_BENCHMARKS}
    assert names == {"mp3d", "water", "cholesky"}
    assert sizes == {8, 16, 32}


def test_fig4_covers_mit_traces():
    assert set(FIG4_BENCHMARKS) == {
        ("fft", 64),
        ("weather", 64),
        ("simple", 64),
    }


def test_fig6_covers_mp3d_and_water():
    names = {name for name, _ in FIG6_BENCHMARKS}
    assert names == {"mp3d", "water"}
    assert len(FIG6_BENCHMARKS) == 6
