"""Unit and property tests for the direct-mapped write-back cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import AccessOutcome, DirectMappedCache
from repro.memory.states import CacheState


@pytest.fixture
def cache():
    # 16 lines of 16 bytes: small enough to exercise conflicts.
    return DirectMappedCache(size_bytes=256, block_size=16)


def test_cold_read_is_miss(cache):
    assert cache.classify(0x100, False) is AccessOutcome.READ_MISS


def test_cold_write_is_miss(cache):
    assert cache.classify(0x100, True) is AccessOutcome.WRITE_MISS


def test_fill_then_read_hits(cache):
    cache.classify(0x100, False)
    cache.fill(0x100, CacheState.RS)
    assert cache.classify(0x100, False) is AccessOutcome.HIT


def test_write_to_rs_is_upgrade(cache):
    cache.fill(0x100, CacheState.RS)
    assert cache.classify(0x100, True) is AccessOutcome.UPGRADE


def test_write_to_we_hits(cache):
    cache.fill(0x100, CacheState.WE)
    assert cache.classify(0x100, True) is AccessOutcome.HIT


def test_read_to_we_hits(cache):
    cache.fill(0x100, CacheState.WE)
    assert cache.classify(0x100, False) is AccessOutcome.HIT


def test_same_block_different_offsets_hit(cache):
    cache.fill(0x100, CacheState.RS)
    for offset in range(16):
        assert cache.state_of(0x100 + offset) is CacheState.RS


def test_conflict_mapping_misses(cache):
    # 256-byte cache: addresses 256 apart share a frame.
    cache.fill(0x000, CacheState.RS)
    assert cache.classify(0x000 + 256, False) is AccessOutcome.READ_MISS


def test_victim_for_conflicting_block(cache):
    cache.fill(0x000, CacheState.WE)
    victim = cache.victim_for(0x000 + 256)
    assert victim == (0x000, CacheState.WE)


def test_victim_none_for_same_block(cache):
    cache.fill(0x000, CacheState.RS)
    assert cache.victim_for(0x000) is None


def test_victim_none_for_empty_frame(cache):
    assert cache.victim_for(0x500) is None


def test_fill_evicts_and_returns_victim(cache):
    cache.fill(0x000, CacheState.WE)
    victim = cache.fill(0x100 * 16, CacheState.RS)  # hmm same index? ensure conflict
    # 0x000 and 256 conflict; use that pair explicitly instead.
    cache2 = DirectMappedCache(size_bytes=256, block_size=16)
    cache2.fill(0x000, CacheState.WE)
    victim = cache2.fill(256, CacheState.RS)
    assert victim == (0x000, CacheState.WE)
    assert cache2.state_of(0x000) is CacheState.INV
    assert cache2.state_of(256) is CacheState.RS


def test_fill_to_inv_rejected(cache):
    with pytest.raises(ValueError):
        cache.fill(0x100, CacheState.INV)


def test_apply_upgrade(cache):
    cache.fill(0x100, CacheState.RS)
    cache.apply_upgrade(0x100)
    assert cache.state_of(0x100) is CacheState.WE


def test_apply_upgrade_requires_rs(cache):
    with pytest.raises(ValueError):
        cache.apply_upgrade(0x100)
    cache.fill(0x100, CacheState.WE)
    with pytest.raises(ValueError):
        cache.apply_upgrade(0x100)


def test_snoop_invalidate(cache):
    cache.fill(0x100, CacheState.RS)
    prior = cache.snoop_invalidate(0x100)
    assert prior is CacheState.RS
    assert cache.state_of(0x100) is CacheState.INV
    assert cache.stats.invalidations_received == 1


def test_snoop_invalidate_absent_is_noop(cache):
    assert cache.snoop_invalidate(0x100) is CacheState.INV
    assert cache.stats.invalidations_received == 0


def test_snoop_downgrade(cache):
    cache.fill(0x100, CacheState.WE)
    prior = cache.snoop_downgrade(0x100)
    assert prior is CacheState.WE
    assert cache.state_of(0x100) is CacheState.RS
    assert cache.stats.downgrades_received == 1


def test_snoop_downgrade_rs_keeps_rs(cache):
    cache.fill(0x100, CacheState.RS)
    assert cache.snoop_downgrade(0x100) is CacheState.RS
    assert cache.state_of(0x100) is CacheState.RS


def test_evict(cache):
    cache.fill(0x100, CacheState.WE)
    assert cache.evict(0x100) is CacheState.WE
    assert cache.state_of(0x100) is CacheState.INV
    assert cache.evict(0x100) is CacheState.INV


def test_stats_counting(cache):
    cache.classify(0x100, False)  # read miss
    cache.fill(0x100, CacheState.RS)
    cache.classify(0x100, False)  # hit
    cache.classify(0x100, True)  # upgrade
    cache.classify(0x200, True)  # write miss
    stats = cache.stats
    assert stats.reads == 2
    assert stats.writes == 2
    assert stats.read_misses == 1
    assert stats.write_misses == 1
    assert stats.upgrades == 1
    assert stats.misses == 2
    assert stats.references == 4
    assert stats.miss_rate == pytest.approx(0.5)


def test_writeback_counted_on_we_eviction(cache):
    cache.fill(0x000, CacheState.WE)
    cache.fill(256, CacheState.RS)
    assert cache.stats.writebacks == 1


def test_resident_blocks(cache):
    cache.fill(0x000, CacheState.WE)
    cache.fill(0x010, CacheState.RS)
    resident = cache.resident_blocks()
    assert resident == {0x000: CacheState.WE, 0x010: CacheState.RS}


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        DirectMappedCache(size_bytes=0, block_size=16)
    with pytest.raises(ValueError):
        DirectMappedCache(size_bytes=100, block_size=16)


def test_state_properties():
    assert CacheState.RS.readable
    assert CacheState.WE.readable
    assert not CacheState.INV.readable
    assert CacheState.WE.writable
    assert not CacheState.RS.writable


@given(
    st.lists(
        st.tuples(st.integers(0, 63), st.booleans()),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=50)
def test_classify_fill_invariants(refs):
    """Whatever the reference stream, a classified miss followed by a
    fill leaves the block readable, and hit/miss accounting stays
    consistent."""
    cache = DirectMappedCache(size_bytes=256, block_size=16)
    for block, is_write in refs:
        address = block * 16
        outcome = cache.classify(address, is_write)
        if outcome in (AccessOutcome.READ_MISS, AccessOutcome.WRITE_MISS):
            cache.fill(
                address, CacheState.WE if is_write else CacheState.RS
            )
        elif outcome is AccessOutcome.UPGRADE:
            cache.apply_upgrade(address)
        state = cache.state_of(address)
        assert state.readable
        if is_write:
            assert state is CacheState.WE
    stats = cache.stats
    assert stats.references == len(refs)
    assert stats.misses <= stats.references
