"""Golden regression tests against the checked-in benchmark artefacts.

The benchmark harness writes its rendered tables to
``benchmarks/output/*.txt``; those files are committed, so they pin
the exact numbers every prior session produced.  These tests re-derive
a cheap slice of two of them and compare against the parsed artefact:

* one row of Table 1 (mp3d, 16 processors, full-map directory) --
  a real trace-driven simulation, so this catches any drift in trace
  generation, the protocol engines, or the simulation kernel;
* all of Table 3 (snooping rate) -- closed-form slot geometry, checked
  cell-for-cell exactly.

Simulations are deterministic, so "tolerance" only needs to absorb the
artefact's 1-decimal rendering (+/- 0.05 on each percentage).
"""

from __future__ import annotations

import importlib.util
import pathlib
import re

import pytest

from repro.core.config import Protocol
from repro.core.experiment import run_simulation_cached
from repro.models.snoop_rate import TABLE3_WIDTHS, snoop_rate_table

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
OUTPUT_DIR = BENCH_DIR / "output"


def _bench_constants():
    """Load benchmarks/conftest.py for REFS_SPLASH (single source)."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", BENCH_DIR / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _golden(name: str) -> str:
    path = OUTPUT_DIR / f"{name}.txt"
    if not path.exists():
        pytest.skip(f"golden artefact {path} not checked in")
    return path.read_text()


def _parse_triple(cell: str):
    return tuple(float(part) for part in cell.split("/"))


# ----------------------------------------------------------------------
# Table 1: one trace-driven row (mp3d, 16p, full map)
# ----------------------------------------------------------------------
def test_table1_mp3d_fullmap_row_matches_golden(temp_store):
    golden = _golden("table1_traversals")
    match = re.search(
        r"^\s*mp3d16\s*\|\s*full\s*\|\s*([\d./]+)\s*\|\s*[\d./]+"
        r"\s*\|\s*([\d./]+)\s*\|",
        golden,
        re.MULTILINE,
    )
    assert match, "mp3d16/full row missing from golden table1 artefact"
    golden_miss = _parse_triple(match.group(1))
    golden_inv = _parse_triple(match.group(2))

    refs = _bench_constants().REFS_SPLASH
    result = run_simulation_cached(
        "mp3d", 16, Protocol.DIRECTORY, data_refs=refs
    )
    miss = result.stats.miss_traversals.as_paper_row()
    inv = result.stats.upgrade_traversals.as_paper_row()
    ours_miss = (miss["1"], miss["2"], miss["3+"])
    ours_inv = (inv["1"], inv["2"], inv["3+"])

    # The artefact renders one decimal; anything past +/-0.05 per
    # bucket means the simulation itself drifted.
    assert ours_miss == pytest.approx(golden_miss, abs=0.05), (
        f"miss traversal drift: ours {ours_miss} vs golden {golden_miss}"
    )
    assert ours_inv == pytest.approx(golden_inv, abs=0.05), (
        f"invalidate traversal drift: ours {ours_inv} vs golden "
        f"{golden_inv}"
    )


# ----------------------------------------------------------------------
# Table 3: closed-form, exact
# ----------------------------------------------------------------------
def test_table3_snoop_rate_matches_golden():
    golden = _golden("table3_snoop_rate")
    # Parse the "ours" table (first block, before the paper copy).
    ours_section = golden.split("Table 3 -- paper")[0]
    golden_cells = {}
    for line in ours_section.splitlines():
        match = re.match(r"^\s*(\d+)\s*\|(.+)$", line)
        if not match:
            continue
        block = int(match.group(1))
        values = [int(cell) for cell in match.group(2).split("|")]
        golden_cells[block] = dict(zip(TABLE3_WIDTHS, values))
    assert golden_cells, "no data rows parsed from golden table3 artefact"

    for row in snoop_rate_table():
        block = row["block size (bytes)"]
        assert block in golden_cells, f"block {block} missing from golden"
        for width in TABLE3_WIDTHS:
            assert row[f"{width}-bit"] == golden_cells[block][width], (
                f"Table 3 cell ({block} B, {width}-bit): "
                f"ours {row[f'{width}-bit']} vs golden "
                f"{golden_cells[block][width]}"
            )
