"""Tests for the engines' public ownership queries.

``dirty_hint`` / ``owned_by`` expose the per-block ownership state the
engines keep (dirty bits, directory entries, sharing-list heads) --
used for lock-mode selection internally and handy for instrumentation.
"""

import pytest

from repro.core.config import Protocol
from tests.conftest import make_engine, run_reference

RING_PROTOCOLS = [
    Protocol.SNOOPING,
    Protocol.DIRECTORY,
    Protocol.LINKED_LIST,
    Protocol.HIERARCHICAL,
]


@pytest.mark.parametrize("protocol", RING_PROTOCOLS + [Protocol.BUS])
def test_clean_block_not_dirty(protocol):
    sim, engine = make_engine(protocol)
    address = engine.address_map.shared_block_address(5)
    assert not engine.dirty_hint(address)
    run_reference(sim, engine, 0, address, False)
    assert not engine.dirty_hint(address)
    assert not engine.owned_by(address, 0)


@pytest.mark.parametrize("protocol", RING_PROTOCOLS + [Protocol.BUS])
def test_written_block_owned_by_writer(protocol):
    sim, engine = make_engine(protocol)
    address = engine.address_map.shared_block_address(5)
    run_reference(sim, engine, 2, address, True)
    assert engine.dirty_hint(address)
    assert engine.owned_by(address, 2)
    assert not engine.owned_by(address, 0)


@pytest.mark.parametrize("protocol", RING_PROTOCOLS)
def test_downgrade_clears_ownership(protocol):
    sim, engine = make_engine(protocol)
    address = engine.address_map.shared_block_address(5)
    run_reference(sim, engine, 2, address, True)
    run_reference(sim, engine, 1, address, False)
    sim.run()
    assert not engine.dirty_hint(address)
    assert not engine.owned_by(address, 2)


def test_ownership_transfer_on_write_miss():
    sim, engine = make_engine(Protocol.SNOOPING)
    address = engine.address_map.shared_block_address(5)
    run_reference(sim, engine, 2, address, True)
    run_reference(sim, engine, 3, address, True)
    assert engine.owned_by(address, 3)
    assert not engine.owned_by(address, 2)
