"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_benchmarks_lists_all_configurations(capsys):
    code, out = run_cli(capsys, "benchmarks")
    assert code == 0
    for name in ("mp3d", "water", "cholesky", "fft", "weather", "simple"):
        assert name in out


def test_snooprate_prints_table3(capsys):
    code, out = run_cli(capsys, "snooprate")
    assert code == 0
    assert "20" in out and "152" in out  # two of the paper's cells
    assert "64-bit" in out


def test_simulate_reports_metrics(capsys):
    code, out = run_cli(
        capsys, "simulate", "mp3d", "-p", "4", "-r", "800"
    )
    assert code == 0
    assert "processor utilization" in out
    assert "shared-miss latency" in out
    assert "mp3d" in out


def test_simulate_directory_protocol(capsys):
    code, out = run_cli(
        capsys,
        "simulate",
        "mp3d",
        "-p",
        "4",
        "-r",
        "800",
        "--protocol",
        "directory",
    )
    assert code == 0
    assert "directory" in out


def test_simulate_weak_ordering_flag(capsys):
    code, out = run_cli(
        capsys,
        "simulate",
        "mp3d",
        "-p",
        "4",
        "-r",
        "800",
        "--weak-ordering",
    )
    assert code == 0


def test_sweep_outputs_twenty_points(capsys):
    code, out = run_cli(capsys, "sweep", "mp3d", "-p", "4", "-r", "800")
    assert code == 0
    assert "cycle (ns)" in out
    # All twenty cycle values from the paper's axis appear.
    assert "20.0" in out and "1.0" in out


def test_compare_renders_three_charts(capsys):
    code, out = run_cli(capsys, "compare", "mp3d", "-p", "4", "-r", "800")
    assert code == 0
    assert out.count("legend") == 3
    assert "snooping" in out and "directory" in out


def test_ringbus_renders_four_series(capsys):
    code, out = run_cli(capsys, "ringbus", "mp3d", "-p", "4", "-r", "800")
    assert code == 0
    assert "bus 50 MHz" in out and "snooping ring 500 MHz" in out


def test_validate_within_tolerances(capsys):
    code, out = run_cli(capsys, "validate", "mp3d", "-p", "4", "-r", "1500")
    assert code == 0
    assert "within the paper's tolerances" in out
    assert "yes" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_benchmark_errors(capsys):
    with pytest.raises(KeyError):
        main(["simulate", "nonexistent", "-p", "4", "-r", "100"])


def test_check_explore_all_protocols(capsys):
    for protocol in ("snooping", "directory", "linkedlist"):
        code, out = run_cli(
            capsys,
            "check",
            "explore",
            "--protocol",
            protocol,
            "--nodes",
            "2",
            "--lines",
            "1",
        )
        assert code == 0
        assert "0 violations" in out
        assert "EXHAUSTIVE" in out


def test_check_explore_hierarchical_parallel(capsys):
    code, out = run_cli(
        capsys,
        "check",
        "explore",
        "--protocol",
        "hierarchical",
        "--nodes",
        "4",
        "--lines",
        "1",
        "--jobs",
        "2",
        "--require-exhaustive",
    )
    assert code == 0
    assert "EXHAUSTIVE" in out


def test_check_explore_require_exhaustive_rejects_truncation(capsys):
    code, out = run_cli(
        capsys,
        "check",
        "explore",
        "--protocol",
        "snooping",
        "--nodes",
        "2",
        "--lines",
        "1",
        "--max-depth",
        "1",
        "--require-exhaustive",
    )
    assert code == 3
    assert "TRUNCATED" in out


def test_check_explore_resume_uses_the_store(capsys, tmp_path):
    from repro.core.store import configure_result_store, get_result_store

    argv = (
        "check",
        "explore",
        "--protocol",
        "snooping",
        "--nodes",
        "2",
        "--lines",
        "1",
        "--resume",
        "--cache-dir",
        str(tmp_path),
    )
    previous = get_result_store()
    try:
        code, out = run_cli(capsys, *argv)
        assert code == 0 and "EXHAUSTIVE" in out
        code, out = run_cli(capsys, *argv)
        assert code == 0
        assert "resumed from" in out
    finally:
        # --cache-dir reconfigures the process-wide store; put the
        # session's isolated store back for the tests that follow.
        configure_result_store(previous.directory, enabled=previous.enabled)


def test_check_fuzz_smoke(capsys):
    code, out = run_cli(
        capsys,
        "check",
        "fuzz",
        "--protocol",
        "snooping",
        "--nodes",
        "4",
        "--lines",
        "8",
        "--steps",
        "300",
        "--seed",
        "9",
    )
    assert code == 0
    assert "0 violations" in out
    assert "seed 9" in out


def test_check_fuzz_sharded_seeds(capsys):
    code, out = run_cli(
        capsys,
        "check",
        "fuzz",
        "--protocol",
        "directory",
        "--nodes",
        "4",
        "--lines",
        "8",
        "--steps",
        "100",
        "--seed",
        "9",
        "--num-seeds",
        "3",
        "--jobs",
        "2",
    )
    assert code == 0
    assert "3 walks" in out
    assert "base seed 9" in out


def test_check_requires_a_verb():
    with pytest.raises(SystemExit):
        main(["check"])


def test_simulate_with_invariant_checking(capsys):
    code, out = run_cli(
        capsys,
        "simulate",
        "mp3d",
        "-p",
        "4",
        "-r",
        "800",
        "--check-invariants",
        "--no-cache",
    )
    assert code == 0
    assert "processor utilization" in out


def test_check_explore_emit_trace_reports_replay_outcome(
    capsys, tmp_path, monkeypatch
):
    """The --emit-trace replay handler distinguishes the expected
    coherence violation (reported, not swallowed) from a replay that
    unexpectedly passes (warned about) -- and re-raises anything else."""
    from repro import check
    from repro.check.invariants import InvariantViolation

    class FakeCounterexample:
        def __init__(self, violates):
            self.violates = violates

        def replay(self, tracer=None):
            if self.violates:
                raise InvariantViolation("swmr", "two writers (stub)")

    class FakeReport:
        ok = False

        def __init__(self, violates):
            self.counterexample = FakeCounterexample(violates)

        def summary(self):
            return "1 violation (stub)"

    trace = tmp_path / "failure.jsonl"
    argv = [
        "check",
        "explore",
        "--protocol",
        "snooping",
        "--nodes",
        "2",
        "--lines",
        "1",
        "--emit-trace",
        str(trace),
    ]

    monkeypatch.setattr(check, "explore", lambda *a, **k: FakeReport(True))
    code = main(argv)
    err = capsys.readouterr().err
    assert code == 1
    assert "replay reproduced the violation" in err
    assert trace.exists()

    monkeypatch.setattr(check, "explore", lambda *a, **k: FakeReport(False))
    code = main(argv)
    err = capsys.readouterr().err
    assert code == 1
    assert "did not reproduce" in err

    class Unexpected(RuntimeError):
        pass

    def broken_replay(tracer=None):
        raise Unexpected("API drift")

    report = FakeReport(True)
    report.counterexample.replay = broken_replay
    monkeypatch.setattr(check, "explore", lambda *a, **k: report)
    with pytest.raises(Unexpected):
        main(argv)
