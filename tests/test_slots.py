"""Unit and property tests for slot/frame geometry (incl. Table 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.snoop_rate import (
    PAPER_TABLE3,
    TABLE3_BLOCK_SIZES,
    TABLE3_WIDTHS,
    snoop_interarrival_ns,
    snoop_rate_table,
)
from repro.ring.slots import (
    BLOCK_HEADER_BYTES,
    PROBE_PAYLOAD_BYTES,
    FrameLayout,
    SlotType,
    stages_for_bytes,
)


def test_stages_for_bytes_examples():
    assert stages_for_bytes(8, 32) == 2
    assert stages_for_bytes(8, 64) == 1
    assert stages_for_bytes(8, 16) == 4
    assert stages_for_bytes(24, 32) == 6
    assert stages_for_bytes(1, 32) == 1


def test_stages_for_bytes_rejects_bad_inputs():
    with pytest.raises(ValueError):
        stages_for_bytes(0, 32)
    with pytest.raises(ValueError):
        stages_for_bytes(8, 0)
    with pytest.raises(ValueError):
        stages_for_bytes(8, 12)  # not a byte multiple


def test_paper_baseline_frame_is_ten_stages():
    """Section 3.3: 'a frame composed of two probe slots and one block
    slot occupies 10 pipeline stages' (32-bit ring, 16-byte blocks)."""
    layout = FrameLayout(width_bits=32, block_size=16)
    assert layout.probe_stages == 2
    assert layout.block_stages == 6
    assert layout.frame_stages == 10


def test_slot_offsets_layout():
    layout = FrameLayout(width_bits=32, block_size=16)
    offsets = layout.slot_offsets()
    assert offsets == [
        (SlotType.PROBE_EVEN, 0),
        (SlotType.PROBE_ODD, 2),
        (SlotType.BLOCK, 4),
    ]


def test_slot_offsets_wider_mix():
    layout = FrameLayout(width_bits=32, block_size=16, probe_slots=4, block_slots=2)
    offsets = layout.slot_offsets()
    types = [slot_type for slot_type, _ in offsets]
    assert types == [
        SlotType.PROBE_EVEN,
        SlotType.PROBE_ODD,
        SlotType.PROBE_EVEN,
        SlotType.PROBE_ODD,
        SlotType.BLOCK,
        SlotType.BLOCK,
    ]
    positions = [offset for _, offset in offsets]
    assert positions == sorted(positions)
    assert layout.frame_stages == 4 * 2 + 2 * 6


def test_probe_parity_selection():
    layout = FrameLayout()
    assert layout.probe_type_for_parity(0) is SlotType.PROBE_EVEN
    assert layout.probe_type_for_parity(1) is SlotType.PROBE_ODD


def test_stages_of():
    layout = FrameLayout(width_bits=32, block_size=16)
    assert layout.stages_of(SlotType.PROBE_EVEN) == 2
    assert layout.stages_of(SlotType.PROBE_ODD) == 2
    assert layout.stages_of(SlotType.BLOCK) == 6


def test_is_probe_property():
    assert SlotType.PROBE_EVEN.is_probe
    assert SlotType.PROBE_ODD.is_probe
    assert not SlotType.BLOCK.is_probe


def test_odd_probe_slots_rejected():
    with pytest.raises(ValueError):
        FrameLayout(probe_slots=3)


def test_zero_slots_rejected():
    with pytest.raises(ValueError):
        FrameLayout(probe_slots=0)
    with pytest.raises(ValueError):
        FrameLayout(block_slots=0)


def test_payload_constants():
    assert PROBE_PAYLOAD_BYTES == 8
    assert BLOCK_HEADER_BYTES == 8


# ----------------------------------------------------------------------
# Table 3: snooping rate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("block_size", TABLE3_BLOCK_SIZES)
@pytest.mark.parametrize("width", TABLE3_WIDTHS)
def test_table3_exact_reproduction(width, block_size):
    """Every cell of the paper's Table 3 is reproduced exactly."""
    assert snoop_interarrival_ns(width, block_size) == pytest.approx(
        PAPER_TABLE3[(block_size, width)]
    )


def test_snoop_rate_table_shape():
    rows = snoop_rate_table()
    assert len(rows) == len(TABLE3_BLOCK_SIZES)
    for row in rows:
        assert set(row) == {"block size (bytes)", "16-bit", "32-bit", "64-bit"}


def test_snoop_rate_scales_with_clock():
    assert snoop_interarrival_ns(32, 16, clock_ps=4_000) == 40.0


@given(
    width=st.sampled_from([16, 32, 64, 128]),
    block=st.sampled_from([16, 32, 64, 128, 256]),
)
def test_frame_geometry_invariants(width, block):
    layout = FrameLayout(width_bits=width, block_size=block)
    # A block slot always outweighs a probe slot (it carries the block
    # on top of a probe-sized header).
    assert layout.block_stages > layout.probe_stages
    assert layout.frame_stages == 2 * layout.probe_stages + layout.block_stages
    # Byte accounting: stages never waste more than one link width.
    assert layout.probe_stages * width >= PROBE_PAYLOAD_BYTES * 8
    assert (layout.probe_stages - 1) * width < PROBE_PAYLOAD_BYTES * 8


@given(st.integers(1, 1_000), st.sampled_from([8, 16, 32, 64, 128]))
def test_stages_for_bytes_is_ceiling(payload, width):
    stages = stages_for_bytes(payload, width)
    assert stages * width >= payload * 8
    assert (stages - 1) * width < payload * 8
