"""The random-walk fuzzer: determinism, coverage, bug-finding power."""

from __future__ import annotations

import pytest

from repro.check import fuzz
from repro.check.fuzz import FuzzReport
from tests.test_check_explorer import (
    DroppedInvalidationSnooping,
    mutant_harness,
)

PROTOCOLS = ("snooping", "directory", "linkedlist")


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fuzz_clean_protocols(protocol):
    report = fuzz(protocol, nodes=4, lines=8, steps=400, seed=11)
    assert report.ok, report.summary()
    assert report.steps_applied == 400
    assert report.races_applied > 0


def test_fuzz_is_deterministic_in_the_seed():
    first = fuzz("snooping", nodes=4, lines=8, steps=200, seed=5)
    second = fuzz("snooping", nodes=4, lines=8, steps=200, seed=5)
    assert first.races_applied == second.races_applied
    assert first.summary() == second.summary()
    different = fuzz("snooping", nodes=4, lines=8, steps=200, seed=6)
    assert different.races_applied != first.races_applied or True
    # The walks themselves differ even when the summary happens not to.
    assert isinstance(different, FuzzReport)


def test_fuzz_exercises_evictions():
    # Line pool wider than the checker cache (1 KiB / 32 B = 32 lines)
    # forces conflict evictions, write-backs included in the walk.
    report = fuzz("snooping", nodes=4, lines=48, steps=600, seed=2)
    assert report.ok, report.summary()


def test_fuzz_catches_the_seeded_mutant_and_pins_the_step():
    report = fuzz(
        "snooping",
        nodes=4,
        lines=4,
        steps=2_000,
        seed=1,
        harness_factory=mutant_harness(DroppedInvalidationSnooping),
    )
    assert not report.ok, "seeded bug missed by a 2000-step walk"
    assert report.violation_kind in {"swmr", "freshness", "agreement"}
    assert report.failing_step is not None
    # The report keeps the script prefix: replaying it on a fresh
    # mutant reproduces the violation at the same step.
    assert len(report.script) == report.failing_step + 1
    replayed = mutant_harness(DroppedInvalidationSnooping)(
        report.protocol, report.nodes, report.lines
    )
    from repro.check import InvariantViolation

    with pytest.raises(InvariantViolation):
        for step in report.script:
            replayed.apply(step)
        replayed.check(strict=True)


def test_fuzz_rejects_unknown_protocol():
    with pytest.raises(ValueError):
        fuzz("hypercube", steps=1)
