"""The random-walk fuzzer: determinism, coverage, bug-finding power."""

from __future__ import annotations

import pytest

from repro.check import fuzz, fuzz_many
from repro.check.fuzz import FuzzReport
from repro.core.parallel import derive_seed
from tests.test_check_explorer import (
    DroppedInvalidationSnooping,
    ParallelMutantHarness,
    mutant_harness,
)

PROTOCOLS = ("snooping", "directory", "linkedlist")


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fuzz_clean_protocols(protocol):
    report = fuzz(protocol, nodes=4, lines=8, steps=400, seed=11)
    assert report.ok, report.summary()
    assert report.steps_applied == 400
    assert report.races_applied > 0


def test_fuzz_is_deterministic_in_the_seed():
    first = fuzz("snooping", nodes=4, lines=8, steps=200, seed=5)
    second = fuzz("snooping", nodes=4, lines=8, steps=200, seed=5)
    assert first.races_applied == second.races_applied
    assert first.summary() == second.summary()
    different = fuzz("snooping", nodes=4, lines=8, steps=200, seed=6)
    assert different.races_applied != first.races_applied or True
    # The walks themselves differ even when the summary happens not to.
    assert isinstance(different, FuzzReport)


def test_fuzz_exercises_evictions():
    # Line pool wider than the checker cache (1 KiB / 32 B = 32 lines)
    # forces conflict evictions, write-backs included in the walk.
    report = fuzz("snooping", nodes=4, lines=48, steps=600, seed=2)
    assert report.ok, report.summary()


def test_fuzz_catches_the_seeded_mutant_and_pins_the_step():
    report = fuzz(
        "snooping",
        nodes=4,
        lines=4,
        steps=2_000,
        seed=1,
        harness_factory=mutant_harness(DroppedInvalidationSnooping),
    )
    assert not report.ok, "seeded bug missed by a 2000-step walk"
    assert report.violation_kind in {"swmr", "freshness", "agreement"}
    assert report.failing_step is not None
    # The report keeps the script prefix: replaying it on a fresh
    # mutant reproduces the violation at the same step.
    assert len(report.script) == report.failing_step + 1
    replayed = mutant_harness(DroppedInvalidationSnooping)(
        report.protocol, report.nodes, report.lines
    )
    from repro.check import InvariantViolation

    with pytest.raises(InvariantViolation):
        for step in report.script:
            replayed.apply(step)
        replayed.check(strict=True)


def test_fuzz_rejects_unknown_protocol():
    with pytest.raises(ValueError):
        fuzz("hypercube", steps=1)


# ----------------------------------------------------------------------
# Sharded campaigns: derived seeds, serial == parallel
# ----------------------------------------------------------------------
def batch_facts(batch):
    return [
        (r.seed, r.steps_applied, r.violation_kind, r.failing_step)
        for r in batch.reports
    ]


def test_fuzz_many_runs_walks_on_derived_seeds():
    batch = fuzz_many(
        "snooping", nodes=4, lines=8, steps=100, seed=3, num_seeds=3
    )
    assert batch.ok, batch.summary()
    assert [r.seed for r in batch.reports] == [
        derive_seed(3, i) for i in range(3)
    ]
    assert len({r.seed for r in batch.reports}) == 3
    assert batch.steps_applied == 300


def test_fuzz_many_parallel_matches_serial():
    serial = fuzz_many(
        "snooping", nodes=4, lines=8, steps=150, seed=9, num_seeds=4, jobs=1
    )
    parallel = fuzz_many(
        "snooping", nodes=4, lines=8, steps=150, seed=9, num_seeds=4, jobs=2
    )
    assert batch_facts(serial) == batch_facts(parallel)
    assert serial.summary() == parallel.summary()


def test_fuzz_many_finds_mutant_violations_identically():
    kwargs = dict(
        nodes=4,
        lines=4,
        steps=600,
        seed=1,
        num_seeds=4,
        harness_factory=ParallelMutantHarness,
    )
    serial = fuzz_many("snooping", jobs=1, **kwargs)
    parallel = fuzz_many("snooping", jobs=2, **kwargs)
    assert not serial.ok, "seeded bug missed by every walk in the batch"
    assert batch_facts(serial) == batch_facts(parallel)
    failure = serial.first_failure()
    # Every finding replays as a plain fuzz() call with the derived
    # seed -- the campaign is just a loop, not a different machine.
    replay = fuzz(
        "snooping",
        nodes=4,
        lines=4,
        steps=600,
        seed=failure.seed,
        harness_factory=ParallelMutantHarness,
    )
    assert replay.failing_step == failure.failing_step
    assert replay.violation_kind == failure.violation_kind


def test_fuzz_many_rejects_bad_num_seeds():
    with pytest.raises(ValueError):
        fuzz_many("snooping", num_seeds=0)
