"""Determinism guarantees: serial == parallel == cached, always.

The parallel sweep executor and the persistent result store are only
sound because every simulation is a pure function of (benchmark,
data_refs, config-including-seed).  This suite pins that down:

* the kernel's event ordering is stable under equal-timestamp ties
  (FIFO by scheduling order -- the heap carries a sequence number),
* the same setup produces bit-identical ``SimulationResult`` values
  across the serial path, a multi-process ``execute_points`` run, and
  a cache hit (memo or disk),
* serialisation round-trips exactly, and
* ``clear_simulation_cache`` isolates the on-disk namespace.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import Protocol, SystemConfig
from repro.core.experiment import (
    cache_counters,
    clear_simulation_cache,
    run_simulation,
    run_simulation_cached,
)
from repro.core.parallel import SweepPoint, derive_seed, execute_points
from repro.core.replication import replicate
from repro.core.sensitivity import sensitivity_sweep
from repro.core.store import (
    get_result_store,
    result_from_jsonable,
    result_to_jsonable,
    temp_result_store,
)
from repro.sim.kernel import Simulator

REFS = 800


# ----------------------------------------------------------------------
# Kernel: equal-timestamp tie-breaking is stable
# ----------------------------------------------------------------------
def test_kernel_equal_time_events_run_in_spawn_order():
    sim = Simulator()
    log = []

    def worker(tag):
        yield sim.timeout(1000)
        log.append(tag)
        yield sim.timeout(0)
        log.append(tag.upper())

    for tag in ("a", "b", "c"):
        sim.spawn(worker(tag), name=tag)
    sim.run()
    # All six wakeups happen at t=1000; order must follow scheduling
    # order, not heap happenstance.
    assert log == ["a", "b", "c", "A", "B", "C"]


def test_kernel_event_waiters_wake_in_wait_order():
    sim = Simulator()
    gate = sim.event("gate")
    log = []

    def waiter(tag):
        yield gate
        log.append(tag)

    def firer():
        yield sim.timeout(500)
        gate.succeed("go")

    for tag in ("x", "y", "z"):
        sim.spawn(waiter(tag), name=tag)
    sim.spawn(firer(), name="firer")
    sim.run()
    assert log == ["x", "y", "z"]


def test_kernel_zero_delay_preserves_relative_order():
    sim = Simulator()
    log = []

    def chain(tag, repeats):
        for index in range(repeats):
            yield sim.timeout(0)
            log.append((tag, index))

    sim.spawn(chain("first", 3))
    sim.spawn(chain("second", 3))
    sim.run()
    assert log == [
        ("first", 0),
        ("second", 0),
        ("first", 1),
        ("second", 1),
        ("first", 2),
        ("second", 2),
    ]


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
def test_derive_seed_is_deterministic_and_separated():
    seeds = [derive_seed(1993, index) for index in range(64)]
    assert seeds == [derive_seed(1993, index) for index in range(64)]
    assert len(set(seeds)) == 64
    assert all(0 <= seed < 2**63 for seed in seeds)
    assert derive_seed(1993, 0) != derive_seed(1994, 0)


# ----------------------------------------------------------------------
# Serialisation round-trip
# ----------------------------------------------------------------------
def test_result_serialisation_roundtrips_exactly():
    result = run_simulation("mp3d", num_processors=4, data_refs=REFS)
    payload = result_to_jsonable(result)
    # The payload is genuinely JSON (no enum/dataclass leakage)...
    rebuilt = result_from_jsonable(json.loads(json.dumps(payload)))
    # ...and the round-trip is exact, field for field.
    assert rebuilt == result
    assert result_to_jsonable(rebuilt) == payload


# ----------------------------------------------------------------------
# Serial == parallel == cached
# ----------------------------------------------------------------------
POINTS = [
    SweepPoint("mp3d", 4, Protocol.SNOOPING, REFS),
    SweepPoint("mp3d", 4, Protocol.DIRECTORY, REFS),
    SweepPoint("water", 4, Protocol.LINKED_LIST, REFS),
    SweepPoint("mp3d", 4, Protocol.SNOOPING, REFS, seed=7),
]


def _canonical(results):
    return [result_to_jsonable(result) for result in results]


def test_parallel_results_match_serial_and_cache_hits(temp_store):
    serial = [
        run_simulation(
            point.benchmark,
            config=point.resolved_config(),
            data_refs=point.data_refs,
            num_processors=point.num_processors,
        )
        for point in POINTS
    ]
    parallel = execute_points(POINTS, jobs=2)
    assert parallel.points_done == len(POINTS)
    assert _canonical(parallel.results) == _canonical(serial)

    # Workers persisted every run; a fresh lookup path (memo cleared)
    # must hit the disk store and still be bit-identical.
    clear_simulation_cache(disk=False)
    before = cache_counters()
    rerun = execute_points(POINTS, jobs=1)
    after = cache_counters()
    assert rerun.cache_hits == len(POINTS)
    assert after["disk_hits"] - before["disk_hits"] == len(POINTS)
    assert _canonical(rerun.results) == _canonical(serial)

    # And the memo path, too.
    memo_run = execute_points(POINTS, jobs=1)
    assert memo_run.cache_hits == len(POINTS)
    assert _canonical(memo_run.results) == _canonical(serial)


def test_seeded_point_differs_from_base_seed(temp_store):
    base, reseeded = execute_points(
        [
            SweepPoint("mp3d", 4, Protocol.SNOOPING, REFS),
            SweepPoint("mp3d", 4, Protocol.SNOOPING, REFS, seed=7),
        ],
        jobs=1,
    ).results
    assert base.config.seed != reseeded.config.seed
    assert result_to_jsonable(base) != result_to_jsonable(reseeded)


def test_replicate_parallel_matches_serial(temp_store):
    serial = replicate(
        "water", 4, Protocol.SNOOPING, seeds=(1, 2, 3), data_refs=REFS
    )
    parallel = replicate(
        "water",
        4,
        Protocol.SNOOPING,
        seeds=(1, 2, 3),
        data_refs=REFS,
        jobs=2,
    )
    assert _canonical(parallel.results) == _canonical(serial.results)
    for name in serial.metrics:
        assert parallel.summary(name).values == serial.summary(name).values


def test_sensitivity_parallel_matches_serial(temp_store):
    kwargs = dict(
        benchmark="mp3d",
        num_processors=4,
        parameter="cache_size_bytes",
        values=(16 * 1024, 64 * 1024),
        data_refs=REFS,
    )
    assert sensitivity_sweep(**kwargs, jobs=2) == sensitivity_sweep(**kwargs)


def test_figure_panels_parallel_match_serial(temp_store):
    from repro.core.sweep import snooping_vs_directory

    serial = snooping_vs_directory("mp3d", 4, data_refs=REFS)
    clear_simulation_cache()
    parallel = snooping_vs_directory("mp3d", 4, data_refs=REFS, jobs=2)
    assert [sweep.points for sweep in parallel] == [
        sweep.points for sweep in serial
    ]


# ----------------------------------------------------------------------
# Cache isolation
# ----------------------------------------------------------------------
def test_clear_simulation_cache_invalidates_disk_namespace(temp_store):
    point = POINTS[0]
    config = point.resolved_config()
    run_simulation_cached(
        point.benchmark,
        point.num_processors,
        point.protocol,
        data_refs=point.data_refs,
        config=config,
    )
    store = get_result_store()
    assert store is temp_store
    assert store.get(point.benchmark, point.data_refs, config) is not None
    clear_simulation_cache()
    # Same setup, post-clear: the namespaced key no longer resolves.
    assert store.get(point.benchmark, point.data_refs, config) is None
    # The file itself is still on disk (other sessions keep their
    # cache); purge is the destructive path.
    assert store.entry_count() == 1
    assert store.purge() == 1
    assert store.entry_count() == 0


def test_temp_result_store_restores_previous_store():
    outer = get_result_store()
    with temp_result_store() as inner:
        assert get_result_store() is inner
        assert inner is not outer
        directory = inner.directory
        run_simulation_cached(
            "mp3d", 4, Protocol.SNOOPING, data_refs=200
        )
        assert inner.entry_count() == 1
    assert get_result_store() is outer
    assert not directory.exists()


def test_disabled_store_never_writes(tmp_path):
    from repro.core.store import configure_result_store

    store = configure_result_store(tmp_path / "cache", enabled=False)
    try:
        clear_simulation_cache(disk=False)
        run_simulation_cached("mp3d", 4, Protocol.SNOOPING, data_refs=200)
        assert store.entry_count() == 0
        assert not (tmp_path / "cache").exists()
    finally:
        clear_simulation_cache()
        configure_result_store(None, enabled=True)
