"""Property-based protocol tests: random traffic, hard invariants.

For any interleaving of reads and writes from any processors, after
all transactions drain every engine must satisfy:

* single-writer / multiple-reader (at most one WE copy, never WE + RS);
* a writer's own cache ends in WE;
* engine bookkeeping (dirty bits, directories, sharing lists) agrees
  with the caches;
* snooping transactions never take more than one ring traversal, and
  full-map transactions never more than two.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import Protocol
from repro.memory.states import CacheState
from tests.conftest import make_engine, run_reference

#: A random access: (processor, block index, is_write).
ACCESS = st.tuples(
    st.integers(0, 3), st.integers(0, 7), st.booleans()
)

PROTOCOL_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def drive_sequence(protocol, accesses):
    sim, engine = make_engine(protocol)
    for node, block_index, is_write in accesses:
        address = engine.address_map.shared_block_address(block_index)
        run_reference(sim, engine, node, address, is_write)
    sim.run()  # drain background write-backs / detaches
    return sim, engine


def check_common_invariants(engine, accesses):
    engine.check_invariants()
    # The last writer of every block either still holds WE or was
    # legitimately invalidated/downgraded by someone later; at minimum
    # the *final* access's own guarantee must hold:
    if accesses:
        node, block_index, is_write = accesses[-1]
        address = engine.address_map.shared_block_address(block_index)
        state = engine.caches[node].state_of(address)
        if is_write:
            assert state is CacheState.WE
        else:
            assert state in (CacheState.RS, CacheState.WE)


@given(st.lists(ACCESS, min_size=1, max_size=40))
@PROTOCOL_SETTINGS
def test_snooping_invariants_under_random_traffic(accesses):
    sim, engine = drive_sequence(Protocol.SNOOPING, accesses)
    check_common_invariants(engine, accesses)
    # Snooping: everything commits in exactly one traversal.
    assert engine.stats.miss_traversals.percentage_at_least(2) == 0.0
    assert engine.stats.upgrade_traversals.percentage_at_least(2) == 0.0
    # Dirty-bit bookkeeping agrees with the caches.
    for node, cache in enumerate(engine.caches):
        for block_address, state in cache.resident_blocks().items():
            block = engine.address_map.block_of(block_address)
            if state is CacheState.WE and engine.address_map.is_shared(
                block_address
            ):
                assert engine.dirty_bits.is_dirty(block)
                assert engine._dirty_node[block] == node


@given(st.lists(ACCESS, min_size=1, max_size=40))
@PROTOCOL_SETTINGS
def test_directory_invariants_under_random_traffic(accesses):
    sim, engine = drive_sequence(Protocol.DIRECTORY, accesses)
    check_common_invariants(engine, accesses)
    # Full map never needs three traversals (paper Table 1).
    assert engine.stats.miss_traversals.percentage_at_least(3) == 0.0
    assert engine.stats.upgrade_traversals.percentage_at_least(3) == 0.0
    # Directory state is a superset of cache state (silent RS
    # replacements may leave stale presence bits, never missing ones),
    # and dirty entries are exact.
    for node, cache in enumerate(engine.caches):
        for block_address, state in cache.resident_blocks().items():
            if not engine.address_map.is_shared(block_address):
                continue
            block = engine.address_map.block_of(block_address)
            entry = engine.directory_for(block_address).entry(block)
            assert node in entry.sharers
            if state is CacheState.WE:
                assert entry.dirty and entry.owner == node


@given(st.lists(ACCESS, min_size=1, max_size=40))
@PROTOCOL_SETTINGS
def test_linkedlist_invariants_under_random_traffic(accesses):
    sim, engine = drive_sequence(Protocol.LINKED_LIST, accesses)
    check_common_invariants(engine, accesses)
    for node, cache in enumerate(engine.caches):
        for block_address, state in cache.resident_blocks().items():
            if not engine.address_map.is_shared(block_address):
                continue
            block = engine.address_map.block_of(block_address)
            entry = engine.directory_for(block_address).entry(block)
            assert node in entry.chain
            if state is CacheState.WE:
                assert entry.dirty and entry.head == node
    # Sharing lists never contain duplicates.
    for directory in engine.directories:
        for block, entry in directory._entries.items():
            assert len(entry.chain) == len(set(entry.chain))


@given(st.lists(ACCESS, min_size=1, max_size=40))
@PROTOCOL_SETTINGS
def test_bus_invariants_under_random_traffic(accesses):
    sim, engine = drive_sequence(Protocol.BUS, accesses)
    check_common_invariants(engine, accesses)
    # Bus never left held.
    assert not engine.bus.busy


@given(st.lists(ACCESS, min_size=1, max_size=25))
@settings(max_examples=15, deadline=None)
def test_protocols_agree_on_final_cache_state(accesses):
    """All four protocols implement the same abstract write-invalidate
    machine: driven sequentially (transactions fully drained between
    references), the final cache states must agree exactly."""
    finals = []
    for protocol in (
        Protocol.SNOOPING,
        Protocol.DIRECTORY,
        Protocol.LINKED_LIST,
        Protocol.BUS,
    ):
        sim, engine = drive_sequence(protocol, accesses)
        snapshot = tuple(
            frozenset(cache.resident_blocks().items())
            for cache in engine.caches
        )
        finals.append(snapshot)
    assert all(final == finals[0] for final in finals[1:])
