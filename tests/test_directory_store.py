"""Unit tests for the directory storage structures."""

import pytest

from repro.memory.directory_store import (
    DirtyBitDirectory,
    FullMapDirectory,
    LinkedListDirectory,
)


# ----------------------------------------------------------------------
# Dirty bits
# ----------------------------------------------------------------------
def test_dirty_bit_lifecycle():
    bits = DirtyBitDirectory()
    assert not bits.is_dirty(5)
    bits.set_dirty(5)
    assert bits.is_dirty(5)
    assert bits.dirty_count() == 1
    bits.clear_dirty(5)
    assert not bits.is_dirty(5)
    bits.clear_dirty(5)  # idempotent
    assert bits.dirty_count() == 0


# ----------------------------------------------------------------------
# Full map
# ----------------------------------------------------------------------
def test_full_map_empty_entry():
    directory = FullMapDirectory(4)
    entry = directory.entry(9)
    assert not entry.dirty
    assert not entry.cached_anywhere
    assert entry.owner is None


def test_full_map_add_sharers():
    directory = FullMapDirectory(4)
    directory.add_sharer(9, 1)
    directory.add_sharer(9, 3)
    entry = directory.entry(9)
    assert entry.sharers == {1, 3}
    assert not entry.dirty


def test_full_map_set_exclusive():
    directory = FullMapDirectory(4)
    directory.add_sharer(9, 1)
    directory.set_exclusive(9, 2)
    entry = directory.entry(9)
    assert entry.sharers == {2}
    assert entry.dirty
    assert entry.owner == 2


def test_full_map_add_sharer_clears_dirty():
    directory = FullMapDirectory(4)
    directory.set_exclusive(9, 2)
    directory.add_sharer(9, 0)
    entry = directory.entry(9)
    assert not entry.dirty
    assert entry.sharers == {0, 2}


def test_full_map_remove_sharer():
    directory = FullMapDirectory(4)
    directory.add_sharer(9, 1)
    directory.add_sharer(9, 2)
    directory.remove_sharer(9, 1)
    assert directory.entry(9).sharers == {2}
    directory.remove_sharer(9, 2)
    assert not directory.entry(9).dirty
    assert not directory.entry(9).cached_anywhere


def test_full_map_remove_unknown_is_noop():
    directory = FullMapDirectory(4)
    directory.remove_sharer(9, 1)  # no entry
    directory.add_sharer(9, 2)
    directory.remove_sharer(9, 3)  # not a sharer
    assert directory.entry(9).sharers == {2}


def test_full_map_clear():
    directory = FullMapDirectory(4)
    directory.set_exclusive(9, 2)
    directory.clear(9)
    assert directory.peek(9) is None


def test_full_map_invalidation_targets_exclude_requester():
    directory = FullMapDirectory(4)
    directory.add_sharer(9, 0)
    directory.add_sharer(9, 1)
    directory.add_sharer(9, 2)
    assert directory.invalidation_targets(9, 1) == {0, 2}
    assert directory.invalidation_targets(10, 1) == set()


def test_full_map_owner_invariant():
    directory = FullMapDirectory(4)
    entry = directory.entry(9)
    entry.sharers = {0, 1}
    entry.dirty = True
    with pytest.raises(ValueError):
        _ = entry.owner


def test_full_map_node_bounds():
    directory = FullMapDirectory(4)
    with pytest.raises(ValueError):
        directory.add_sharer(9, 4)
    with pytest.raises(ValueError):
        directory.set_exclusive(9, -1)


# ----------------------------------------------------------------------
# Linked list
# ----------------------------------------------------------------------
def test_linked_list_prepend_order():
    directory = LinkedListDirectory(8)
    directory.prepend_sharer(3, 1)
    directory.prepend_sharer(3, 5)
    directory.prepend_sharer(3, 2)
    assert directory.entry(3).chain == [2, 5, 1]
    assert directory.entry(3).head == 2


def test_linked_list_prepend_moves_existing_to_head():
    directory = LinkedListDirectory(8)
    for node in (1, 5, 2):
        directory.prepend_sharer(3, node)
    directory.prepend_sharer(3, 1)
    assert directory.entry(3).chain == [1, 2, 5]


def test_linked_list_set_exclusive_collapses():
    directory = LinkedListDirectory(8)
    for node in (1, 5, 2):
        directory.prepend_sharer(3, node)
    directory.set_exclusive(3, 7)
    entry = directory.entry(3)
    assert entry.chain == [7]
    assert entry.dirty
    assert entry.head == 7


def test_linked_list_prepend_clears_dirty():
    directory = LinkedListDirectory(8)
    directory.set_exclusive(3, 7)
    directory.prepend_sharer(3, 1)
    assert not directory.entry(3).dirty
    assert directory.entry(3).chain == [1, 7]


def test_linked_list_remove_sharer():
    directory = LinkedListDirectory(8)
    for node in (1, 5, 2):
        directory.prepend_sharer(3, node)
    directory.remove_sharer(3, 5)
    assert directory.entry(3).chain == [2, 1]
    directory.remove_sharer(3, 2)
    directory.remove_sharer(3, 1)
    assert not directory.entry(3).cached_anywhere
    assert not directory.entry(3).dirty


def test_linked_list_clear():
    directory = LinkedListDirectory(8)
    directory.prepend_sharer(3, 1)
    directory.clear(3)
    assert directory.peek(3) is None


def test_linked_list_empty_head_is_none():
    directory = LinkedListDirectory(8)
    assert directory.entry(3).head is None


def test_linked_list_node_bounds():
    directory = LinkedListDirectory(4)
    with pytest.raises(ValueError):
        directory.prepend_sharer(3, 4)
    with pytest.raises(ValueError):
        directory.set_exclusive(3, 9)


def test_constructors_reject_bad_sizes():
    with pytest.raises(ValueError):
        FullMapDirectory(0)
    with pytest.raises(ValueError):
        LinkedListDirectory(-1)
