"""Unit tests for stores, resources and FIFO servers."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.queues import FifoServer, Resource, Store


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_put_then_get(sim):
    store = Store(sim)
    store.put("a")
    got = []

    def consumer():
        got.append((yield store.get()))

    sim.spawn(consumer())
    sim.run()
    assert got == ["a"]


def test_store_get_blocks_until_put(sim):
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(4_000)
        store.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(4_000, "late")]


def test_store_fifo_order(sim):
    store = Store(sim)
    for item in range(5):
        store.put(item)
    got = []

    def consumer():
        for _ in range(5):
            got.append((yield store.get()))

    sim.spawn(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_getters_served_fifo(sim):
    store = Store(sim)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    sim.spawn(consumer("first"))
    sim.spawn(consumer("second"))

    def producer():
        yield sim.timeout(10)
        store.put("x")
        store.put("y")

    sim.spawn(producer())
    sim.run()
    assert got == [("first", "x"), ("second", "y")]


def test_store_len(sim):
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------
def test_resource_immediate_grant(sim):
    resource = Resource(sim)
    log = []

    def body():
        yield resource.acquire()
        log.append(sim.now)
        resource.release()

    sim.spawn(body())
    sim.run()
    assert log == [0]
    assert not resource.busy


def test_resource_mutual_exclusion(sim):
    resource = Resource(sim)
    log = []

    def body(tag):
        yield resource.acquire()
        log.append((tag, "in", sim.now))
        yield sim.timeout(1_000)
        log.append((tag, "out", sim.now))
        resource.release()

    sim.spawn(body("a"))
    sim.spawn(body("b"))
    sim.run()
    assert log == [
        ("a", "in", 0),
        ("a", "out", 1_000),
        ("b", "in", 1_000),
        ("b", "out", 2_000),
    ]


def test_resource_fifo_queue(sim):
    resource = Resource(sim)
    order = []

    def body(tag):
        yield resource.acquire()
        order.append(tag)
        yield sim.timeout(10)
        resource.release()

    for tag in range(4):
        sim.spawn(body(tag))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_resource_release_idle_raises(sim):
    resource = Resource(sim)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_utilization(sim):
    resource = Resource(sim)

    def body():
        yield resource.acquire()
        yield sim.timeout(4_000)
        resource.release()
        yield sim.timeout(6_000)

    sim.spawn(body())
    sim.run()
    assert resource.utilization() == pytest.approx(0.4)


def test_resource_queue_length(sim):
    resource = Resource(sim)
    seen = []

    def holder():
        yield resource.acquire()
        yield sim.timeout(100)
        seen.append(resource.queue_length)
        resource.release()

    def waiter():
        yield resource.acquire()
        resource.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert seen == [1]


def test_resource_grant_count(sim):
    resource = Resource(sim)

    def body():
        yield resource.acquire()
        resource.release()

    for _ in range(3):
        sim.spawn(body())
    sim.run()
    assert resource.grants == 3


# ----------------------------------------------------------------------
# FifoServer
# ----------------------------------------------------------------------
def test_fifo_server_single_request(sim):
    server = FifoServer(sim, service_time=5_000)
    done = []

    def body():
        yield server.request()
        done.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert done == [5_000]


def test_fifo_server_requests_queue(sim):
    server = FifoServer(sim, service_time=5_000)
    done = []

    def body(tag):
        yield server.request()
        done.append((tag, sim.now))

    sim.spawn(body("a"))
    sim.spawn(body("b"))
    sim.run()
    assert done == [("a", 5_000), ("b", 10_000)]


def test_fifo_server_idle_gap_not_counted(sim):
    server = FifoServer(sim, service_time=1_000)
    done = []

    def body():
        yield server.request()
        yield sim.timeout(10_000)
        yield server.request()
        done.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert done == [12_000]
    assert server.mean_wait() == 0.0


def test_fifo_server_mean_wait(sim):
    server = FifoServer(sim, service_time=2_000)

    def body():
        yield server.request()

    sim.spawn(body())
    sim.spawn(body())
    sim.run()
    # First waits 0, second waits 2000.
    assert server.mean_wait() == pytest.approx(1_000)


def test_fifo_server_custom_service_time(sim):
    server = FifoServer(sim, service_time=1_000)
    done = []

    def body():
        yield server.request(service_time=7_000)
        done.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert done == [7_000]


def test_fifo_server_utilization(sim):
    server = FifoServer(sim, service_time=3_000)

    def body():
        yield server.request()
        yield sim.timeout(7_000)

    sim.spawn(body())
    sim.run()
    assert server.utilization() == pytest.approx(0.3)


def test_fifo_server_negative_service_rejected(sim):
    with pytest.raises(ValueError):
        FifoServer(sim, service_time=-1)


def test_fifo_server_request_count(sim):
    server = FifoServer(sim, service_time=10)

    def body():
        yield server.request()

    for _ in range(5):
        sim.spawn(body())
    sim.run()
    assert server.requests == 5
