"""Unit and property tests for the deterministic RNG helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import (
    DeterministicRng,
    substream_seed,
    zipf_cumulative_weights,
)


def test_same_seed_same_stream_reproduces():
    a = DeterministicRng(7, stream=3)
    b = DeterministicRng(7, stream=3)
    assert [a.uniform() for _ in range(50)] == [b.uniform() for _ in range(50)]


def test_different_streams_differ():
    a = DeterministicRng(7, stream=0)
    b = DeterministicRng(7, stream=1)
    assert [a.uniform() for _ in range(10)] != [b.uniform() for _ in range(10)]


def test_different_seeds_differ():
    a = DeterministicRng(1, stream=0)
    b = DeterministicRng(2, stream=0)
    assert [a.uniform() for _ in range(10)] != [b.uniform() for _ in range(10)]


@given(st.integers(min_value=0, max_value=2**32), st.integers(0, 10_000))
def test_substream_seed_is_64_bit(seed, stream):
    value = substream_seed(seed, stream)
    assert 0 <= value < 2**64


@given(st.integers(min_value=0, max_value=2**31))
def test_substream_adjacent_streams_differ(seed):
    assert substream_seed(seed, 0) != substream_seed(seed, 1)


def test_uniform_in_unit_interval():
    rng = DeterministicRng(42)
    for _ in range(1000):
        value = rng.uniform()
        assert 0.0 <= value < 1.0


def test_randint_bounds_inclusive():
    rng = DeterministicRng(42)
    values = {rng.randint(3, 5) for _ in range(200)}
    assert values == {3, 4, 5}


def test_bernoulli_extremes():
    rng = DeterministicRng(42)
    assert not any(rng.bernoulli(0.0) for _ in range(100))
    assert all(rng.bernoulli(1.0) for _ in range(100))


def test_bernoulli_rate_reasonable():
    rng = DeterministicRng(42)
    hits = sum(rng.bernoulli(0.3) for _ in range(10_000))
    assert 0.27 < hits / 10_000 < 0.33


def test_choice_returns_member():
    rng = DeterministicRng(42)
    options = ["x", "y", "z"]
    for _ in range(50):
        assert rng.choice(options) in options


def test_geometric_mean_one_is_constant():
    rng = DeterministicRng(42)
    assert all(rng.geometric(1.0) == 1 for _ in range(100))


def test_geometric_support_is_positive():
    rng = DeterministicRng(42)
    assert all(rng.geometric(5.0) >= 1 for _ in range(1000))


@pytest.mark.parametrize("mean", [2.0, 8.0, 50.0])
def test_geometric_sample_mean_close(mean):
    rng = DeterministicRng(7)
    n = 20_000
    sample = sum(rng.geometric(mean) for _ in range(n)) / n
    assert abs(sample - mean) / mean < 0.08


def test_zipf_weights_monotone():
    weights = zipf_cumulative_weights(100, 0.8)
    assert len(weights) == 100
    assert all(b > a for a, b in zip(weights, weights[1:]))


def test_zipf_index_in_range():
    rng = DeterministicRng(11)
    weights = zipf_cumulative_weights(64, 0.6)
    for _ in range(500):
        assert 0 <= rng.zipf_index(64, weights) < 64


def test_zipf_skews_to_low_ranks():
    rng = DeterministicRng(11)
    weights = zipf_cumulative_weights(1000, 1.0)
    draws = [rng.zipf_index(1000, weights) for _ in range(5000)]
    low = sum(1 for draw in draws if draw < 100)
    assert low > 1_500  # far more than the uniform 500


@given(st.integers(1, 500), st.floats(0.0, 2.0))
@settings(max_examples=30)
def test_zipf_weights_length_and_positive(size, exponent):
    weights = zipf_cumulative_weights(size, exponent)
    assert len(weights) == size
    assert weights[0] > 0.0
