"""Protocol-invariant suite: randomized workloads, machine-checked state.

Formal protocol modelling work (e.g. Meunier et al.'s CSP/FDR ring
models) checks coherence protocols by exhausting small state spaces;
this suite approximates that with seeded randomized workloads over the
snooping, full-map directory and linked-list engines, asserting the
core invariants after every drained transaction:

* **Single-writer / multi-reader** -- at most one cache holds a block
  WE, and never concurrently with RS copies elsewhere (the engines'
  own ``check_invariants`` plus direct assertions here).
* **Directory-cache agreement** -- each protocol's ownership metadata
  (dirty bit + owner hint, presence bits, sharing list) matches the
  actual cache states.  The full map is allowed stale presence bits
  for silently replaced RS lines (the paper's protocol replaces shared
  lines without notifying the home), so its sharer set is checked as a
  superset; the linked list rolls nodes out on replacement, so its
  chain is checked exactly.
* **No lost writes** -- after a write transaction drains, the writer
  is the sole WE holder and every ownership record names it, so any
  later read must source its data.

Workloads are deterministic (seeded ``random.Random``), use a small
cache to force conflict evictions and write-backs, and run both
one-reference-at-a-time (strongest assertions) and concurrent-batch
(interleaving stress) schedules.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import CacheConfig, Protocol, SystemConfig
from repro.core.experiment import build_engine
from repro.memory.cache import AccessOutcome
from repro.memory.states import CacheState
from repro.sim.kernel import Simulator

#: Engines under test (bus/hierarchical have their own suites).
PROTOCOLS = (Protocol.SNOOPING, Protocol.DIRECTORY, Protocol.LINKED_LIST)

NODES = 4
#: 512 B / 16 B = 32 lines: a pool of 48 blocks forces evictions.
SMALL_CACHE = CacheConfig(size_bytes=512, block_size=16)
POOL_BLOCKS = 48
REFS_PER_RUN = 400
BATCHES = 60
SEEDS = (1, 2026)


def fresh_engine(protocol: Protocol):
    sim = Simulator()
    config = SystemConfig(
        num_processors=NODES, protocol=protocol, cache=SMALL_CACHE
    )
    return sim, build_engine(sim, config)


def drive(sim, engine, node: int, address: int, is_write: bool) -> None:
    """One reference through the engine, event loop drained after."""
    outcome = engine.caches[node].classify(address, is_write)
    if outcome is AccessOutcome.HIT:
        return
    sim.spawn(
        engine.miss(node, address, outcome), name=f"ref:n{node}"
    )
    sim.run()


def holders(engine, address: int):
    """{node: state} for every cache holding the block."""
    return {
        node: cache.state_of(address)
        for node, cache in enumerate(engine.caches)
        if cache.state_of(address) is not CacheState.INV
    }


def writers(engine, address: int):
    return [
        node
        for node, state in holders(engine, address).items()
        if state is CacheState.WE
    ]


# ----------------------------------------------------------------------
# Per-protocol directory-cache agreement
# ----------------------------------------------------------------------
def assert_agreement(engine, protocol: Protocol, address: int) -> None:
    block = engine.address_map.block_of(address)
    held = holders(engine, address)
    writing = writers(engine, address)
    # Single-writer / multi-reader, directly.
    assert len(writing) <= 1, f"block {block}: multiple writers {writing}"
    if writing:
        assert held == {writing[0]: CacheState.WE}, (
            f"block {block}: WE at {writing[0]} alongside sharers {held}"
        )

    if protocol is Protocol.SNOOPING:
        dirty = engine.dirty_bits.is_dirty(block)
        if dirty:
            owner = engine._dirty_node.get(block)
            assert writing == [owner], (
                f"block {block}: dirty bit names {owner}, caches say "
                f"{writing}"
            )
        else:
            assert not writing, (
                f"block {block}: WE at {writing} but dirty bit clear"
            )
        return

    directory = engine.directory_for(address)
    entry = directory.peek(block)
    sharers = (
        set(entry.chain)
        if protocol is Protocol.LINKED_LIST
        else set(entry.sharers)
    ) if entry is not None else set()
    dirty = bool(entry.dirty) if entry is not None else False

    # Every actual holder must be visible to the home.
    assert set(held) <= sharers, (
        f"block {block}: caches {set(held)} unknown to directory "
        f"{sharers}"
    )
    if protocol is Protocol.LINKED_LIST:
        # Rollout on replacement keeps the list exact and duplicate-free.
        assert entry is None or len(entry.chain) == len(set(entry.chain))
        assert sharers == set(held), (
            f"block {block}: chain {sharers} vs caches {set(held)}"
        )
    if dirty:
        assert len(sharers) == 1, (
            f"block {block}: dirty with sharer set {sharers}"
        )
        (owner,) = sharers
        assert writing == [owner], (
            f"block {block}: directory owner {owner}, caches say {writing}"
        )
    else:
        assert not writing, (
            f"block {block}: WE at {writing} but directory clean"
        )


def assert_all_agreement(engine, protocol: Protocol, addresses) -> None:
    engine.check_invariants()
    for address in addresses:
        assert_agreement(engine, protocol, address)


# ----------------------------------------------------------------------
# Randomized sequential workload (strongest per-step assertions)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.value)
@pytest.mark.parametrize("seed", SEEDS)
def test_randomized_sequential_workload(protocol, seed):
    sim, engine = fresh_engine(protocol)
    rng = random.Random(seed)
    pool = [
        engine.address_map.shared_block_address(index)
        for index in range(POOL_BLOCKS)
    ]
    last_writer = {}
    for _ in range(REFS_PER_RUN):
        node = rng.randrange(NODES)
        address = rng.choice(pool)
        is_write = rng.random() < 0.35
        drive(sim, engine, node, address, is_write)
        assert_all_agreement(engine, protocol, pool)
        block = engine.address_map.block_of(address)
        if is_write:
            last_writer[block] = node
            # No lost write: the writer is the sole WE holder, so a
            # subsequent read anywhere must source from it.
            assert engine.caches[node].state_of(address) is CacheState.WE
            for other in range(NODES):
                if other != node:
                    assert (
                        engine.caches[other].state_of(address)
                        is CacheState.INV
                    )
            assert engine.owned_by(address, node)
        else:
            # A read never destroys the last write: if the block is
            # still dirty anywhere, ownership is coherent with caches
            # (checked above); if the writer was downgraded, it holds
            # RS data -- the write survives in some cache or at home
            # after its write-back, never silently in an INV line.
            writer = last_writer.get(block)
            if writer is not None and writers(engine, address):
                assert writers(engine, address) == [writer]


# ----------------------------------------------------------------------
# Concurrent batches (interleaving stress)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.value)
def test_randomized_concurrent_batches(protocol):
    sim, engine = fresh_engine(protocol)
    rng = random.Random(90_93)
    pool = [
        engine.address_map.shared_block_address(index)
        for index in range(POOL_BLOCKS)
    ]
    for _ in range(BATCHES):
        spawned = 0
        for node in range(NODES):
            address = rng.choice(pool)
            is_write = rng.random() < 0.35
            outcome = engine.caches[node].classify(address, is_write)
            if outcome is AccessOutcome.HIT:
                continue
            sim.spawn(
                engine.miss(node, address, outcome), name=f"batch:n{node}"
            )
            spawned += 1
        if spawned:
            sim.run()
        # After the batch drains, every invariant must hold again.
        assert_all_agreement(engine, protocol, pool)


# ----------------------------------------------------------------------
# Directed no-lost-write scenarios
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.value)
def test_write_then_remote_read_preserves_ownership_chain(protocol):
    """W(0) -> R(1) -> R(2): the dirty copy is downgraded, never lost."""
    sim, engine = fresh_engine(protocol)
    address = engine.address_map.shared_block_address(0)
    drive(sim, engine, 0, address, True)
    assert engine.caches[0].state_of(address) is CacheState.WE
    drive(sim, engine, 1, address, False)
    # The writer's data survived: node 0 holds RS (sharing write-back
    # semantics) or the home took the block back -- never a lost line.
    assert engine.caches[1].state_of(address) is CacheState.RS
    assert engine.caches[0].state_of(address) in (
        CacheState.RS,
        CacheState.INV,
    )
    drive(sim, engine, 2, address, False)
    assert engine.caches[2].state_of(address) is CacheState.RS
    assert_all_agreement(engine, protocol, [address])


@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.value)
def test_ping_pong_writes_alternate_exclusivity(protocol):
    """Alternating writers: exactly one WE holder after each write."""
    sim, engine = fresh_engine(protocol)
    address = engine.address_map.shared_block_address(3)
    for turn in range(8):
        node = turn % NODES
        drive(sim, engine, node, address, True)
        assert writers(engine, address) == [node]
        assert engine.owned_by(address, node)
        assert_all_agreement(engine, protocol, [address])


@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.value)
def test_eviction_pressure_keeps_directories_consistent(protocol):
    """Conflict-miss churn (pool >> cache) never desyncs the home."""
    sim, engine = fresh_engine(protocol)
    rng = random.Random(7)
    pool = [
        engine.address_map.shared_block_address(index)
        for index in range(POOL_BLOCKS * 2)
    ]
    for _ in range(300):
        drive(
            sim,
            engine,
            rng.randrange(NODES),
            rng.choice(pool),
            rng.random() < 0.5,
        )
    assert_all_agreement(engine, protocol, pool)
    # Something actually churned.
    total_writebacks = sum(
        cache.stats.writebacks for cache in engine.caches
    )
    assert total_writebacks > 0
